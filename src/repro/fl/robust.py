"""Robust-aggregation defenses over the stacked gradient matrix.

The paper's own defense is *detection*: Algorithm 2 clusters the uploaded
gradients, marks the global update's cluster as high contribution, and the
discard strategy drops the rest.  This module adds the complementary family
from the robust-FL literature — aggregation rules that bound what any single
forged gradient can do to the global update, independent of clustering:

* **norm clipping** — rescale update directions whose ℓ2 norm exceeds a
  multiple of the round's median norm (defuses scaled forgeries);
* **Krum / multi-Krum** (Blanchard et al., 2017) — score each row by the sum
  of squared distances to its nearest neighbours and keep the best-scoring
  row (Krum) or the ``n - m`` best rows (multi-Krum);
* **coordinate-wise median** (Yin et al., 2018) — aggregate each coordinate
  as the median across rows;
* **trimmed mean** (Yin et al., 2018) — drop the largest and smallest
  ``ceil(f·n)`` values per coordinate and average the rest.

Every defense implements the :class:`RobustAggregator` protocol: it takes the
``(k, d)`` matrix of *update directions* (rows minus the previous global
parameters — the space where the shared starting point cancels) and returns a
:class:`RobustOutcome` naming the surviving rows, the possibly-clipped
matrix, and the robust aggregate direction.  Defenses compose left-to-right
through :class:`DefensePipeline` (clip → filter → aggregate), built from a
``"+"``-chained name such as ``"norm_clip+krum"`` by :func:`make_defense`.

Two kinds of defense exist and the distinction matters downstream:

* *filtering* defenses (norm clipping, Krum) remove or shrink rows but leave
  aggregation to the caller — they compose with the paper's Equation (1) fair
  aggregation over the survivors;
* *aggregate-replacing* defenses (median, trimmed mean;
  ``replaces_aggregation = True``) are themselves the aggregation rule — the
  robust aggregate **is** the round's global update, and Procedure II runs
  only for its detection/reward side effects.

All kernels are pure, vectorised, and deterministic (stable argsort
tie-breaking), so they preserve the repository's bit-identical-across-backends
guarantee.  See ``docs/threat_model.md`` for the attack↔defense catalogue.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fl.aggregation import AggregationError

__all__ = [
    "DEFENSES",
    "RobustOutcome",
    "RobustAggregator",
    "NoDefense",
    "NormClipDefense",
    "KrumDefense",
    "MedianDefense",
    "TrimmedMeanDefense",
    "DefensePipeline",
    "pairwise_sq_distances",
    "krum_scores",
    "clip_rows",
    "coordinate_median",
    "trimmed_mean",
    "make_defense",
    "check_defense",
]

#: Primitive defense names accepted by :func:`make_defense` (chain with "+").
DEFENSES = ("none", "norm_clip", "krum", "multi_krum", "median", "trimmed_mean")


def _check_matrix(deltas: np.ndarray) -> np.ndarray:
    m = np.asarray(deltas, dtype=np.float64)
    if m.ndim != 2 or m.shape[0] == 0:
        raise AggregationError(
            f"expected a non-empty (num_clients, dim) direction matrix, got shape {m.shape}"
        )
    return m


# -- pure kernels -------------------------------------------------------------
def pairwise_sq_distances(matrix: np.ndarray) -> np.ndarray:
    """Squared euclidean distance between every pair of rows, as a ``(k, k)`` matrix."""
    m = _check_matrix(matrix)
    sq = np.einsum("ij,ij->i", m, m)
    d = sq[:, None] + sq[None, :] - 2.0 * (m @ m.T)
    np.maximum(d, 0.0, out=d)
    return d


def krum_scores(matrix: np.ndarray, num_attackers: int) -> np.ndarray:
    """Per-row Krum scores: the sum of each row's ``k - m - 2`` smallest squared distances.

    The neighbour count is clamped to at least one, so the score stays defined
    in the degenerate regimes the theory excludes (``m >= (k - 2) / 2``, tiny
    rounds); a single-row matrix scores ``[0.0]``.
    """
    m = _check_matrix(matrix)
    k = m.shape[0]
    if num_attackers < 0:
        raise AggregationError(f"num_attackers must be >= 0, got {num_attackers}")
    if k == 1:
        return np.zeros(1)
    neighbours = max(1, min(k - 1, k - int(num_attackers) - 2))
    dists = pairwise_sq_distances(m)
    np.fill_diagonal(dists, np.inf)
    nearest = np.sort(dists, axis=1)[:, :neighbours]
    return nearest.sum(axis=1)


def clip_rows(matrix: np.ndarray, max_norm: float) -> tuple[np.ndarray, int]:
    """Scale rows with ℓ2 norm above ``max_norm`` down to it.

    Returns the clipped copy and the number of rows that were rescaled.
    ``max_norm <= 0`` (an all-zero round) leaves the matrix untouched.
    """
    m = _check_matrix(matrix)
    if max_norm <= 0.0:
        return m.copy(), 0
    norms = np.linalg.norm(m, axis=1)
    over = norms > max_norm
    clipped = m.copy()
    if over.any():
        clipped[over] *= (max_norm / norms[over])[:, None]
    return clipped, int(np.count_nonzero(over))


def coordinate_median(matrix: np.ndarray) -> np.ndarray:
    """Coordinate-wise median across rows."""
    return np.median(_check_matrix(matrix), axis=0)


def trimmed_mean(matrix: np.ndarray, trim: int) -> np.ndarray:
    """Mean of each coordinate after dropping the ``trim`` largest and smallest values.

    ``trim`` is clamped so at least one value per coordinate survives.
    """
    m = _check_matrix(matrix)
    k = m.shape[0]
    if trim < 0:
        raise AggregationError(f"trim must be >= 0, got {trim}")
    t = min(int(trim), (k - 1) // 2)
    if t == 0:
        return m.mean(axis=0)
    ordered = np.sort(m, axis=0)
    return ordered[t : k - t].mean(axis=0)


# -- the protocol -------------------------------------------------------------
@dataclass(frozen=True)
class RobustOutcome:
    """What one defense (or pipeline) did to a round's direction matrix.

    Attributes
    ----------
    deltas:
        The surviving (possibly clipped) direction rows, in input order.
    kept_indices:
        Indices into the *input* rows that survived filtering.
    aggregate:
        The robust aggregate direction over the survivors.
    clipped:
        Number of rows whose norm was reduced by a clipping stage.
    replaces_aggregation:
        True when :attr:`aggregate` is the final aggregation rule itself
        (median / trimmed mean) rather than a reference the caller may
        re-weight (Equation 1) over the survivors.
    """

    deltas: np.ndarray
    kept_indices: tuple[int, ...]
    aggregate: np.ndarray
    clipped: int = 0
    replaces_aggregation: bool = False


class RobustAggregator:
    """Protocol for robust-aggregation defenses over the stacked direction matrix."""

    name: str = "robust"
    #: True when the rule's aggregate is the round's global update itself.
    replaces_aggregation: bool = False

    def apply(self, deltas: np.ndarray) -> RobustOutcome:
        """Filter/transform the ``(k, d)`` direction matrix and aggregate it."""
        raise NotImplementedError


class NoDefense(RobustAggregator):
    """Identity defense: keep every row, aggregate with the plain mean."""

    name = "none"

    def apply(self, deltas: np.ndarray) -> RobustOutcome:
        m = _check_matrix(deltas)
        return RobustOutcome(
            deltas=m,
            kept_indices=tuple(range(m.shape[0])),
            aggregate=m.mean(axis=0),
        )


class NormClipDefense(RobustAggregator):
    """Clip direction norms to ``multiplier`` times the round's median norm.

    A scaled forgery (model-replacement style) relies on one row's magnitude
    dominating the mean; clipping to the median norm bounds every row's pull
    without rejecting anyone.  Keeps all rows; aggregate = mean of the clipped
    matrix.
    """

    name = "norm_clip"

    def __init__(self, multiplier: float = 1.0) -> None:
        if multiplier <= 0.0:
            raise ValueError(f"clip multiplier must be positive, got {multiplier}")
        self.multiplier = float(multiplier)

    def apply(self, deltas: np.ndarray) -> RobustOutcome:
        m = _check_matrix(deltas)
        max_norm = self.multiplier * float(np.median(np.linalg.norm(m, axis=1)))
        clipped, count = clip_rows(m, max_norm)
        return RobustOutcome(
            deltas=clipped,
            kept_indices=tuple(range(m.shape[0])),
            aggregate=clipped.mean(axis=0),
            clipped=count,
        )


class KrumDefense(RobustAggregator):
    """Krum / multi-Krum selection (Blanchard et al., 2017).

    Sizes itself for ``ceil(attacker_fraction · k)`` adversaries among ``k``
    rows.  Classic Krum (``multi=False``) keeps the single best-scoring row;
    multi-Krum keeps the ``k - m`` best rows (never fewer than one).  The
    aggregate is the mean of the selected rows; the caller may re-weight the
    survivors (Equation 1) since selection, not averaging, carries the
    robustness.
    """

    def __init__(self, attacker_fraction: float = 0.2, *, multi: bool = False) -> None:
        if not (0.0 <= attacker_fraction < 0.5):
            raise ValueError(
                f"attacker_fraction must lie in [0, 0.5), got {attacker_fraction}"
            )
        self.attacker_fraction = float(attacker_fraction)
        self.multi = bool(multi)
        self.name = "multi_krum" if multi else "krum"

    def apply(self, deltas: np.ndarray) -> RobustOutcome:
        m = _check_matrix(deltas)
        k = m.shape[0]
        num_attackers = int(np.ceil(self.attacker_fraction * k))
        scores = krum_scores(m, num_attackers)
        select = max(1, k - num_attackers) if self.multi else 1
        order = np.argsort(scores, kind="stable")
        kept = tuple(sorted(int(i) for i in order[:select]))
        survivors = m[list(kept)]
        return RobustOutcome(
            deltas=survivors,
            kept_indices=kept,
            aggregate=survivors.mean(axis=0),
        )


class MedianDefense(RobustAggregator):
    """Coordinate-wise median (Yin et al., 2018): the aggregate IS the rule."""

    name = "median"
    replaces_aggregation = True

    def apply(self, deltas: np.ndarray) -> RobustOutcome:
        m = _check_matrix(deltas)
        return RobustOutcome(
            deltas=m,
            kept_indices=tuple(range(m.shape[0])),
            aggregate=coordinate_median(m),
            replaces_aggregation=True,
        )


class TrimmedMeanDefense(RobustAggregator):
    """Coordinate-wise trimmed mean sized for ``ceil(attacker_fraction · k)`` outliers."""

    name = "trimmed_mean"
    replaces_aggregation = True

    def __init__(self, attacker_fraction: float = 0.2) -> None:
        if not (0.0 <= attacker_fraction < 0.5):
            raise ValueError(
                f"attacker_fraction must lie in [0, 0.5), got {attacker_fraction}"
            )
        self.attacker_fraction = float(attacker_fraction)

    def apply(self, deltas: np.ndarray) -> RobustOutcome:
        m = _check_matrix(deltas)
        trim = int(np.ceil(self.attacker_fraction * m.shape[0]))
        return RobustOutcome(
            deltas=m,
            kept_indices=tuple(range(m.shape[0])),
            aggregate=trimmed_mean(m, trim),
            replaces_aggregation=True,
        )


class DefensePipeline(RobustAggregator):
    """Compose defenses left-to-right: each stage sees the previous survivors.

    The canonical shape is clip → filter → aggregate (e.g.
    ``"norm_clip+krum"``): clipping bounds magnitudes, filtering removes
    rows, and the *last* stage's aggregate (and its
    ``replaces_aggregation`` flag) is the pipeline's.  Kept indices are
    composed back into input-row indices; clip counts accumulate.
    """

    def __init__(self, stages: list[RobustAggregator]) -> None:
        if not stages:
            raise ValueError("a defense pipeline needs at least one stage")
        self.stages = list(stages)
        self.name = "+".join(stage.name for stage in self.stages)
        self.replaces_aggregation = self.stages[-1].replaces_aggregation

    def apply(self, deltas: np.ndarray) -> RobustOutcome:
        m = _check_matrix(deltas)
        kept = list(range(m.shape[0]))
        clipped = 0
        outcome: RobustOutcome | None = None
        for stage in self.stages:
            outcome = stage.apply(m)
            kept = [kept[i] for i in outcome.kept_indices]
            clipped += outcome.clipped
            m = outcome.deltas
        assert outcome is not None
        return RobustOutcome(
            deltas=m,
            kept_indices=tuple(kept),
            aggregate=outcome.aggregate,
            clipped=clipped,
            replaces_aggregation=self.replaces_aggregation,
        )


# -- factory ------------------------------------------------------------------
def _make_primitive(name: str, attacker_fraction: float) -> RobustAggregator:
    if name == "none":
        return NoDefense()
    if name == "norm_clip":
        return NormClipDefense()
    if name == "krum":
        return KrumDefense(attacker_fraction, multi=False)
    if name == "multi_krum":
        return KrumDefense(attacker_fraction, multi=True)
    if name == "median":
        return MedianDefense()
    if name == "trimmed_mean":
        return TrimmedMeanDefense(attacker_fraction)
    raise ValueError(
        f"unknown defense {name!r}; expected one of: " + ", ".join(DEFENSES)
    )


def make_defense(
    name: str, *, attacker_fraction: float = 0.2
) -> RobustAggregator | None:
    """Resolve a defense by name; ``"none"`` returns ``None`` (no defense layer).

    ``name`` may chain primitives with ``"+"`` (applied left to right), e.g.
    ``"norm_clip+multi_krum"``.  ``attacker_fraction`` sizes Krum's selection
    and the trimmed mean's trim width.
    """
    key = name.strip().lower()
    parts = [part.strip() for part in key.split("+") if part.strip()]
    if not parts:
        raise ValueError(f"empty defense name {name!r}")
    if parts == ["none"]:
        return None
    if "none" in parts:
        raise ValueError(f"'none' cannot be combined with other defenses: {name!r}")
    stages = [_make_primitive(part, attacker_fraction) for part in parts]
    if len(stages) == 1:
        return stages[0]
    for stage in stages[:-1]:
        if stage.replaces_aggregation:
            raise ValueError(
                f"aggregate-replacing defense {stage.name!r} must be the last "
                f"stage of a pipeline, got {name!r}"
            )
    return DefensePipeline(stages)


def check_defense(name: str, attacker_fraction: float = 0.2) -> str:
    """Validate a defense name (incl. '+'-chains) and fraction; returns the name.

    Used by the config classes so a misconfigured defense fails at
    construction time with the same message :func:`make_defense` would raise.
    """
    make_defense(name, attacker_fraction=attacker_fraction)
    return name
