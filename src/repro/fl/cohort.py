"""Cohort execution of Procedure I: whole-population local updates at once.

:class:`CohortTrainer` replaces the per-client Python loop with the batched
kernels of :mod:`repro.nn.cohort`.  Selected clients are grouped into
*cohorts* of statistically identical shape (same model factory, same train
and validation shard shapes) and each cohort trains as a handful of stacked
``(clients, batch, features)`` matrix ops.

Bit-exactness contract
----------------------
The produced :class:`~repro.fl.client.ClientUpdate` objects are byte-identical
to what ``FLClient.local_update`` returns on the serial path:

* the per-client RNG streams are preserved — each client's mini-batch
  permutations are drawn from *its own* ``client.rng``, one per epoch, in
  epoch order, exactly as ``BatchIterator`` would (streams are private per
  client, so drawing them up front cannot change any value);
* every numeric kernel matches the serial op (see :mod:`repro.nn.cohort`),
  including the FedProx proximal term and weight decay;
* bookkeeping side effects (``rounds_participated``) are applied to the
  coordinator's client objects just like the other executor backends.

Memory contract
---------------
Cohorts are chunked to at most ``max_cohort_size`` clients, so peak memory is
``O(max_cohort_size · (params + shard))`` regardless of the population size.
:meth:`CohortTrainer.iter_update_blocks` streams these chunks to the caller
without ever materialising one ``ClientUpdate`` per client, which is what
lets a 100k-client round fit in bounded memory (see
``FedAvgTrainer._run_round_streaming``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from repro.fl.client import ClientUpdate, FLClient, LocalTrainingConfig
from repro.nn.cohort import (
    CohortModel,
    CohortUnsupportedError,
    add_proximal_term,
    batched_accuracy,
    batched_softmax_cross_entropy,
    batched_softmax_cross_entropy_grad,
    sgd_step,
)

__all__ = ["CohortBlock", "CohortTrainer", "DEFAULT_MAX_COHORT_SIZE"]

#: Default cohort chunk width: large enough that the stacked matmuls dominate
#: the Python overhead, small enough that one chunk of MNIST-scale shards plus
#: a (chunk, params) matrix stays well under a few hundred MB.
DEFAULT_MAX_COHORT_SIZE = 512


@dataclass
class CohortBlock:
    """One trained cohort chunk, streamed before any aggregation.

    Attributes
    ----------
    client_ids:
        The chunk's clients, in selection order within the chunk.
    parameters:
        Updated flat parameters, shape ``(len(client_ids), P)``; row ``i``
        is byte-identical to the serial ``ClientUpdate.parameters`` of
        ``client_ids[i]``.
    num_samples:
        Local training-shard size shared by the whole cohort (cohorts group
        clients of identical shard shape).
    train_losses / val_accuracies:
        Per-client scalars matching the serial update fields exactly.
    """

    client_ids: list[int]
    parameters: np.ndarray
    num_samples: int
    train_losses: list[float]
    val_accuracies: list[float]


class CohortTrainer:
    """Runs Procedure I for many clients at once with stacked numpy kernels."""

    def __init__(self, max_cohort_size: int = DEFAULT_MAX_COHORT_SIZE) -> None:
        if int(max_cohort_size) <= 0:
            raise ValueError(f"max_cohort_size must be positive, got {max_cohort_size}")
        self.max_cohort_size = int(max_cohort_size)
        self._models: dict[object, CohortModel] = {}

    # -- model compilation ----------------------------------------------
    def _compiled_model(self, client: FLClient, num_parameters: int) -> CohortModel:
        factory = getattr(client, "_model_factory", None)
        if factory is None:
            raise CohortUnsupportedError(
                f"client {type(client).__name__} exposes no model factory; "
                "the cohort backend needs one to compile a batched model"
            )
        try:
            key: object = factory
            model = self._models.get(key)
        except TypeError:  # unhashable custom factory
            key = id(factory)
            model = self._models.get(key)
        if model is None:
            model = CohortModel.from_module(factory())
            self._models[key] = model
        if model.num_parameters != int(num_parameters):
            raise CohortUnsupportedError(
                f"compiled cohort model has {model.num_parameters} parameters "
                f"but the global vector has {num_parameters}"
            )
        return model

    # -- grouping -------------------------------------------------------
    @staticmethod
    def _group_key(client: FLClient) -> tuple:
        dataset = client.dataset
        return (
            getattr(client, "_model_factory", None),
            np.asarray(dataset.images).shape,
            np.asarray(dataset.val_images).shape,
        )

    def _cohort_chunks(
        self, clients: Mapping[int, FLClient], selected: list[int]
    ) -> Iterator[list[int]]:
        """Group ``selected`` into same-shape cohorts, chunked for memory."""
        groups: dict[tuple, list[int]] = {}
        for cid in selected:
            key = self._group_key(clients[int(cid)])
            groups.setdefault(key, []).append(int(cid))
        for members in groups.values():
            for start in range(0, len(members), self.max_cohort_size):
                yield members[start : start + self.max_cohort_size]

    # -- training -------------------------------------------------------
    def iter_update_blocks(
        self,
        clients: Mapping[int, FLClient],
        selected: list[int],
        global_parameters: np.ndarray,
        config: LocalTrainingConfig,
    ) -> Iterator[CohortBlock]:
        """Train the selected clients cohort by cohort, yielding each block.

        Peak memory is bounded by ``max_cohort_size`` regardless of
        ``len(selected)``.
        """
        global_ref = np.asarray(global_parameters, dtype=np.float64)
        for chunk in self._cohort_chunks(clients, selected):
            yield self._train_chunk(clients, chunk, global_ref, config)

    def run_local_updates(
        self,
        clients: Mapping[int, FLClient],
        selected: list[int],
        global_parameters: np.ndarray,
        local_config: LocalTrainingConfig,
    ) -> list[ClientUpdate]:
        """Drop-in for ``ParallelExecutor.run_local_updates`` (selection order)."""
        by_id: dict[int, ClientUpdate] = {}
        for block in self.iter_update_blocks(clients, selected, global_parameters, local_config):
            for i, cid in enumerate(block.client_ids):
                by_id[cid] = ClientUpdate(
                    client_id=cid,
                    parameters=block.parameters[i].copy(),
                    num_samples=block.num_samples,
                    train_loss=block.train_losses[i],
                    val_accuracy=block.val_accuracies[i],
                )
        return [by_id[int(cid)] for cid in selected]

    def _train_chunk(
        self,
        clients: Mapping[int, FLClient],
        chunk: list[int],
        global_ref: np.ndarray,
        config: LocalTrainingConfig,
    ) -> CohortBlock:
        cohort = [clients[cid] for cid in chunk]
        model = self._compiled_model(cohort[0], global_ref.shape[0])
        size = len(cohort)

        images = np.stack([c.dataset.images for c in cohort])
        labels = np.stack([c.dataset.labels for c in cohort])
        num_samples = int(images.shape[1])

        # Per-client mini-batch permutations: one draw per epoch from each
        # client's private stream, in epoch order — the exact draws
        # BatchIterator performs on the serial path.
        orders = np.empty((size, config.epochs, num_samples), dtype=np.int64)
        for i, client in enumerate(cohort):
            for epoch in range(config.epochs):
                orders[i, epoch] = client.rng.permutation(num_samples)

        params = np.repeat(global_ref[None, :], size, axis=0)
        grads = np.zeros_like(params)
        rows = np.arange(size)[:, None]
        losses: list[list[float]] = [[] for _ in range(size)]

        for epoch in range(config.epochs):
            for start in range(0, num_samples, config.batch_size):
                sel = orders[:, epoch, start : start + config.batch_size]
                x_batch = images[rows, sel]
                y_batch = labels[rows, sel]
                grads.fill(0.0)
                logits = model.forward(params, x_batch)
                step_losses, probs = batched_softmax_cross_entropy(logits, y_batch)
                grad_logits = batched_softmax_cross_entropy_grad(probs, y_batch)
                model.backward(params, grads, grad_logits)
                if config.proximal_mu > 0.0:
                    add_proximal_term(grads, params, global_ref, config.proximal_mu)
                sgd_step(
                    params,
                    grads,
                    learning_rate=config.learning_rate,
                    weight_decay=config.weight_decay,
                )
                for i, value in enumerate(step_losses):
                    losses[i].append(value)

        for client in cohort:
            client.rounds_participated += 1

        val_images = np.stack([c.dataset.val_images for c in cohort])
        val_labels = np.stack([c.dataset.val_labels for c in cohort])
        val_logits = model.forward(params, val_images)
        accuracies = batched_accuracy(val_logits, val_labels)
        train_losses = [float(np.mean(client_losses)) for client_losses in losses]

        return CohortBlock(
            client_ids=list(chunk),
            parameters=params,
            num_samples=num_samples,
            train_losses=train_losses,
            val_accuracies=accuracies,
        )

    # -- evaluation -----------------------------------------------------
    def evaluate_population(
        self,
        clients: Mapping[int, FLClient],
        selected: list[int],
        parameters: np.ndarray,
    ) -> list[float]:
        """Batched ``client.evaluate(parameters)`` for every selected client.

        Used by the streaming round path, where per-client scratch models
        would defeat the bounded-memory goal.  Returns accuracies in
        ``selected`` order, each bit-identical to the serial
        ``FLClient.evaluate``.
        """
        global_ref = np.asarray(parameters, dtype=np.float64)
        by_id: dict[int, float] = {}
        for chunk in self._cohort_chunks(clients, selected):
            cohort = [clients[cid] for cid in chunk]
            model = self._compiled_model(cohort[0], global_ref.shape[0])
            val_images = np.stack([c.dataset.val_images for c in cohort])
            val_labels = np.stack([c.dataset.val_labels for c in cohort])
            params = np.repeat(global_ref[None, :], len(cohort), axis=0)
            logits = model.forward(params, val_images)
            for cid, acc in zip(chunk, batched_accuracy(logits, val_labels)):
                by_id[cid] = acc
        return [by_id[int(cid)] for cid in selected]
