"""FedAvg baseline trainer (McMahan et al., 2017).

The baseline the paper labels "FedAvg": random client selection, local
mini-batch SGD, and central aggregation.  The per-round delay comes from the
shared :class:`~repro.sim.delay.DelayModel` adapter — i.e. one event-kernel
round of local training + upload + server aggregation, with no ledger costs —
so the delay comparisons of Figures 4a, 5a, 6a and 7a pit all systems against
the same discrete-event timing substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.datasets.federated import FederatedDataset
from repro.fl.client import FLClient, LocalTrainingConfig
from repro.fl.history import RoundRecord, TrainingHistory
from repro.fl.robust import check_defense
from repro.fl.selection import RandomSelector
from repro.fl.server import CentralServer
from repro.nn.models import ModelFactory
from repro.nn.module import Module
from repro.runner.checkpoint import CheckpointMixin
from repro.runner.executor import ParallelExecutor
from repro.sim.delay import DelayModel, DelayParameters
from repro.utils.rng import new_rng
from repro.utils.timer import SimulatedClock
from repro.utils.validation import check_executor_settings, check_probability

__all__ = ["FedAvgConfig", "FedAvgTrainer"]


@dataclass(frozen=True)
class FedAvgConfig:
    """Configuration of a FedAvg run (defaults follow the paper's Section 5.1).

    ``executor_backend`` / ``executor_workers`` select how the round's local
    updates fan out (serial by default; see
    :class:`repro.runner.executor.ParallelExecutor`).  ``defense`` routes the
    server's aggregation through a robust-aggregation pipeline
    (:mod:`repro.fl.robust`; ``"none"`` keeps classic FedAvg) sized for a
    ``defense_fraction`` adversary share.
    """

    num_rounds: int = 100
    participation_fraction: float = 0.1
    local: LocalTrainingConfig = field(default_factory=LocalTrainingConfig)
    aggregation: str = "simple"
    defense: str = "none"
    defense_fraction: float = 0.2
    model_name: str = "mlp"
    hidden_sizes: tuple[int, ...] = (64,)
    delay_params: DelayParameters = field(default_factory=DelayParameters)
    executor_backend: str = "serial"
    executor_workers: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_rounds <= 0:
            raise ValueError(f"num_rounds must be positive, got {self.num_rounds}")
        check_probability("participation_fraction", self.participation_fraction)
        check_executor_settings(self.executor_backend, self.executor_workers)
        if not (0.0 <= self.defense_fraction < 0.5):
            raise ValueError(
                f"defense_fraction must lie in [0, 0.5), got {self.defense_fraction}"
            )
        check_defense(self.defense, self.defense_fraction)


class FedAvgTrainer(CheckpointMixin):
    """Runs federated averaging over a :class:`~repro.datasets.federated.FederatedDataset`."""

    label = "fedavg"

    #: Cohort-backend rounds with at least this many selected clients stream
    #: per-cohort blocks into a running aggregate instead of materialising one
    #: ``ClientUpdate`` per client (100k updates of a logreg model would be
    #: ~6 GB).  Below the threshold the materialising path keeps the byte-exact
    #: parity contract with the serial executor; the streaming fold adds float
    #: additions in a different association order, so it is equivalent only to
    #: ~1e-12 (and still fully deterministic).
    STREAM_THRESHOLD = 4096

    def __init__(self, dataset: FederatedDataset, config: FedAvgConfig) -> None:
        self.dataset = dataset
        self.config = config
        self.selector = RandomSelector(config.participation_fraction)
        self.delay_model = DelayModel(config.delay_params, new_rng(config.seed, self.label, "delay"))
        self._selection_rng = new_rng(config.seed, self.label, "selection")

        input_dim = int(dataset.clients[0].images.shape[1])
        num_classes = int(
            max(int(c.labels.max(initial=0)) for c in dataset.clients) + 1
        )
        num_classes = max(num_classes, 10)
        # Value-typed factory so clients can cross a process boundary when the
        # executor uses the process backend.
        self._model_factory: Callable[[], Module] = ModelFactory(
            model_name=config.model_name,
            input_dim=input_dim,
            num_classes=num_classes,
            seed=config.seed,
            label=self.label,
            hidden_sizes=tuple(config.hidden_sizes),
        )
        self.server = CentralServer(
            self._model_factory,
            aggregation=config.aggregation,
            defense=config.defense,
            defense_fraction=config.defense_fraction,
        )
        self.clients = [
            FLClient(
                shard,
                self._model_factory,
                new_rng(config.seed, self.label, "client", shard.client_id),
            )
            for shard in dataset.clients
        ]
        self._clients_by_id = {client.client_id: client for client in self.clients}
        self.executor = ParallelExecutor(config.executor_backend, config.executor_workers)
        self.clock = SimulatedClock()
        self.history = TrainingHistory(label=self.label)

    def _checkpoint_client_map(self) -> dict:
        return self._clients_by_id

    # ------------------------------------------------------------------
    def _local_config(self) -> LocalTrainingConfig:
        """The local-update configuration used for every client (hook for FedProx)."""
        return self.config.local

    def _post_process_updates(self, updates, rng: np.random.Generator):
        """Hook for subclasses (FedProx drops a fraction of updates here)."""
        return updates

    def _aggregate(self, updates) -> np.ndarray:
        """Apply the round's aggregation; hook for server-side variants.

        Subclasses (e.g. the momentum-FedAvg system registered by
        ``examples/custom_system.py``) can post-process the server's
        aggregate here, as long as they leave ``self.server`` holding the new
        global parameters.
        """
        return self.server.aggregate(updates)

    def _streaming_supported(self) -> bool:
        """Whether this round can use the bounded-memory streaming fold.

        Defenses and non-mean aggregation schemes need the full update matrix
        at once; subclasses with update post-processing (FedProx straggler
        drops) extend this check.
        """
        return self.server.defense is None and self.config.aggregation in ("simple", "samples")

    def run_round(self, round_index: int, clock: SimulatedClock) -> RoundRecord:
        """Execute one communication round and return its record."""
        selected = self.selector.select(len(self.clients), self._selection_rng)
        local_cfg = self._local_config()
        if (
            self.executor.backend == "cohort"
            and len(selected) >= self.STREAM_THRESHOLD
            and self._streaming_supported()
        ):
            return self._run_round_streaming(round_index, clock, selected, local_cfg)
        updates = self.executor.run_local_updates(
            self._clients_by_id,
            [int(cid) for cid in selected],
            self.server.global_parameters,
            local_cfg,
        )
        updates = self._post_process_updates(updates, self._selection_rng)
        if not updates:
            # All selected clients were dropped; keep the previous global model.
            updates = []
            avg_acc = self.server.evaluate(self.dataset.test_images, self.dataset.test_labels)
            train_loss = 0.0
        else:
            self._aggregate(updates)
            # Average verification accuracy of the *new global model* across the
            # round's participants -- the same metric the FAIR-BFL trainer uses,
            # so the accuracy comparisons of Figs. 4b/5b/7b are apples-to-apples.
            avg_acc = float(
                np.mean(
                    [
                        self.clients[int(cid)].evaluate(self.server.global_parameters)
                        for cid in selected
                    ]
                )
            )
            train_loss = float(np.mean([u.train_loss for u in updates]))

        sizes = [self.clients[int(cid)].num_samples for cid in selected]
        batches_per_epoch = float(np.mean([np.ceil(s / local_cfg.batch_size) for s in sizes]))
        breakdown = self.delay_model.fl_round(
            num_participants=len(selected),
            batches_per_epoch=batches_per_epoch,
            epochs=local_cfg.epochs,
        )
        clock.advance(breakdown.total)
        return RoundRecord(
            round_index=round_index,
            delay=breakdown.total,
            accuracy=avg_acc,
            train_loss=train_loss,
            elapsed_time=clock.now,
            participants=[int(c) for c in selected],
            extras={"delay_breakdown": breakdown.as_dict()},
        )

    def _run_round_streaming(
        self,
        round_index: int,
        clock: SimulatedClock,
        selected: np.ndarray,
        local_cfg: LocalTrainingConfig,
    ) -> RoundRecord:
        """One round as a streaming fold over cohort blocks (bounded memory).

        Equivalent to the materialising round up to float-summation order:
        the weighted sum accumulates block by block instead of reducing one
        ``(n, params)`` matrix, so a 100k-client round never holds more than
        one cohort chunk of updates.  Per-client evaluation of the new global
        model runs batched through the cohort engine for the same reason.
        """
        selected_ids = [int(cid) for cid in selected]
        weighted_sum = np.zeros_like(self.server.global_parameters)
        total_weight = 0.0
        train_losses: list[float] = []
        blocks = 0
        for block in self.executor.iter_update_blocks(
            self._clients_by_id, selected_ids, self.server.global_parameters, local_cfg
        ):
            if self.config.aggregation == "samples":
                weights = np.full(len(block.client_ids), float(block.num_samples))
            else:
                weights = np.ones(len(block.client_ids))
            weighted_sum += weights @ block.parameters
            total_weight += float(weights.sum())
            train_losses.extend(block.train_losses)
            blocks += 1
        new_global = self.server.commit_global(weighted_sum / total_weight)
        accuracies = self.executor.evaluate_population(
            self._clients_by_id, selected_ids, new_global
        )
        avg_acc = float(np.mean(accuracies))
        train_loss = float(np.mean(train_losses))

        sizes = [self.clients[cid].num_samples for cid in selected_ids]
        batches_per_epoch = float(np.mean([np.ceil(s / local_cfg.batch_size) for s in sizes]))
        breakdown = self.delay_model.fl_round(
            num_participants=len(selected_ids),
            batches_per_epoch=batches_per_epoch,
            epochs=local_cfg.epochs,
        )
        clock.advance(breakdown.total)
        return RoundRecord(
            round_index=round_index,
            delay=breakdown.total,
            accuracy=avg_acc,
            train_loss=train_loss,
            elapsed_time=clock.now,
            participants=selected_ids,
            extras={
                "delay_breakdown": breakdown.as_dict(),
                "cohort_stream": {"blocks": blocks, "clients": len(selected_ids)},
            },
        )

    def run(self, *, num_rounds: int | None = None) -> TrainingHistory:
        """Run ``num_rounds`` *additional* rounds and return the full history.

        The clock and history are instance state (continuing from where a
        previous call — or a restored checkpoint — left off), which is what
        makes partial runs resumable; a fresh trainer behaves exactly as
        before.
        """
        rounds = self.config.num_rounds if num_rounds is None else int(num_rounds)
        for r in range(len(self.history), len(self.history) + rounds):
            self.history.append(self.run_round(r, self.clock))
        return self.history

    def test_accuracy(self) -> float:
        """Accuracy of the current global model on the held-out global test set."""
        return self.server.evaluate(self.dataset.test_images, self.dataset.test_labels)

    def close(self) -> None:
        """Release any worker pools held by the parallel executor."""
        self.executor.close()

    def __enter__(self) -> "FedAvgTrainer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
