"""Client selection.

Algorithm 1 (line 3) samples ``λ·n`` clients uniformly at random each round.
With the discard strategy of Algorithm 2, low-contributing clients are
additionally excluded from the *following* round ("the corresponding workers
will no longer participate before the round" — Section 3.2), which the paper
frames as "a new method of client selection".  Both behaviours live here.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_probability

__all__ = ["RandomSelector", "ContributionBasedSelector"]


class RandomSelector:
    """Uniform random selection of ``ceil(λ·n)`` clients per round."""

    def __init__(self, participation_fraction: float = 1.0) -> None:
        self.participation_fraction = check_probability(
            "participation_fraction", participation_fraction
        )
        if self.participation_fraction == 0.0:
            raise ValueError("participation_fraction must be > 0")

    def num_selected(self, num_clients: int) -> int:
        """Number of clients selected from a population of ``num_clients``."""
        if num_clients <= 0:
            raise ValueError(f"num_clients must be positive, got {num_clients}")
        return max(1, int(np.ceil(self.participation_fraction * num_clients)))

    def select(self, num_clients: int, rng: np.random.Generator) -> np.ndarray:
        """Return the sorted indices of the selected clients."""
        k = self.num_selected(num_clients)
        chosen = rng.choice(num_clients, size=k, replace=False)
        return np.sort(chosen).astype(np.int64)


class ContributionBasedSelector(RandomSelector):
    """Random selection that excludes clients discarded in the previous round.

    The exclusion lasts exactly one round (the paper discards a low-contributor
    "before the round", i.e. the next one); afterwards the client re-enters the
    selection pool, since a previously noisy client may contribute usefully
    later.
    """

    def __init__(self, participation_fraction: float = 1.0) -> None:
        super().__init__(participation_fraction)
        self._excluded: set[int] = set()

    def exclude_for_next_round(self, client_ids: list[int] | np.ndarray) -> None:
        """Mark ``client_ids`` as excluded from the next selection."""
        self._excluded = {int(c) for c in np.asarray(client_ids, dtype=np.int64).ravel()}

    @property
    def currently_excluded(self) -> set[int]:
        """The client indices that will be skipped by the next ``select`` call."""
        return set(self._excluded)

    def select(self, num_clients: int, rng: np.random.Generator) -> np.ndarray:
        k = self.num_selected(num_clients)
        excluded = self._excluded
        # The exclusion is consumed by this selection regardless of outcome.
        self._excluded = set()
        eligible = np.array(
            [c for c in range(num_clients) if c not in excluded], dtype=np.int64
        )
        if eligible.size == 0:
            # Degenerate case: everything was discarded; fall back to the full pool
            # rather than stalling the round.
            eligible = np.arange(num_clients, dtype=np.int64)
            excluded = set()
        # Discarded workers "no longer participate before the round": the round's
        # active population shrinks by the number of discarded clients rather than
        # being backfilled, which is what gives the discard strategy its delay
        # savings (Fig. 7a) in addition to its selection effect.
        k = max(1, min(k - len(excluded), eligible.size)) if k > len(excluded) else 1
        chosen = rng.choice(eligible, size=k, replace=False)
        return np.sort(chosen).astype(np.int64)
