"""FedProx baseline trainer (Li et al., 2020).

FedProx differs from FedAvg in two ways the paper's comparison relies on:

* each client optimises a *proximal* local objective
  ``F_i(w) + (μ/2)·||w - w_global||²``, tolerating inexact local solutions
  (which is why the paper observes its accuracy "still fluctuates after the
  model converges");
* a ``drop_percent`` fraction of selected devices behave as stragglers.  In
  the paper's cost-effectiveness comparison (Fig. 7) the stragglers are
  *dropped* from aggregation ("FedProx avoids the global model skew by
  discarding stragglers"), which is the behaviour implemented here.  Stragglers
  additionally run fewer local epochs before being dropped, modelling the
  partial work they performed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.federated import FederatedDataset
from repro.fl.client import ClientUpdate, LocalTrainingConfig
from repro.fl.fedavg import FedAvgConfig, FedAvgTrainer
from repro.utils.validation import check_non_negative, check_probability

__all__ = ["FedProxConfig", "FedProxTrainer"]


@dataclass(frozen=True)
class FedProxConfig(FedAvgConfig):
    """FedAvg configuration plus the FedProx-specific knobs."""

    proximal_mu: float = 0.01
    drop_percent: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        check_non_negative("proximal_mu", self.proximal_mu)
        check_probability("drop_percent", self.drop_percent)

    @classmethod
    def from_fedavg(
        cls,
        base: FedAvgConfig,
        *,
        proximal_mu: float = 0.01,
        drop_percent: float = 0.0,
    ) -> "FedProxConfig":
        """Clone a FedAvg configuration, adding the FedProx parameters."""
        return cls(
            num_rounds=base.num_rounds,
            participation_fraction=base.participation_fraction,
            local=base.local,
            aggregation=base.aggregation,
            defense=base.defense,
            defense_fraction=base.defense_fraction,
            model_name=base.model_name,
            hidden_sizes=base.hidden_sizes,
            delay_params=base.delay_params,
            executor_backend=base.executor_backend,
            executor_workers=base.executor_workers,
            seed=base.seed,
            proximal_mu=proximal_mu,
            drop_percent=drop_percent,
        )


class FedProxTrainer(FedAvgTrainer):
    """FedProx: proximal local objective + straggler dropping."""

    label = "fedprox"

    def __init__(self, dataset: FederatedDataset, config: FedProxConfig) -> None:
        if not isinstance(config, FedProxConfig):
            raise TypeError(f"FedProxTrainer requires a FedProxConfig, got {type(config).__name__}")
        super().__init__(dataset, config)
        self.config: FedProxConfig = config

    def _local_config(self) -> LocalTrainingConfig:
        base = self.config.local
        return LocalTrainingConfig(
            epochs=base.epochs,
            batch_size=base.batch_size,
            learning_rate=base.learning_rate,
            proximal_mu=self.config.proximal_mu,
            weight_decay=base.weight_decay,
        )

    def _streaming_supported(self) -> bool:
        """Straggler dropping needs the materialised update list (and an RNG draw)."""
        return super()._streaming_supported() and self.config.drop_percent <= 0.0

    def _post_process_updates(
        self, updates: list[ClientUpdate], rng: np.random.Generator
    ) -> list[ClientUpdate]:
        """Drop a ``drop_percent`` fraction of the round's updates (stragglers)."""
        drop = self.config.drop_percent
        if drop <= 0.0 or not updates:
            return updates
        keep_mask = rng.random(len(updates)) >= drop
        kept = [u for u, keep in zip(updates, keep_mask) if keep]
        # Never drop everything: the round must still produce a global model.
        return kept if kept else updates[:1]
