"""Round-by-round training history.

Every trainer (FAIR-BFL, FedAvg, FedProx, the pure-blockchain baseline)
appends one :class:`RoundRecord` per communication round; the benchmark
harness turns histories into the series plotted in the paper's figures
(average delay per round, average accuracy versus elapsed time).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RoundRecord", "TrainingHistory"]


@dataclass
class RoundRecord:
    """Measurements of one communication round.

    Attributes
    ----------
    round_index:
        Zero-based round number.
    delay:
        Simulated duration of the round in seconds (d_i of Section 5.1).
    accuracy:
        Average verification accuracy across participating clients (acc of
        Section 5.1).
    train_loss:
        Mean local training loss across participating clients.
    elapsed_time:
        Cumulative simulated time at the *end* of this round (the x-axis of
        the accuracy-vs-time figures).
    participants:
        Indices of the clients that uploaded updates this round.
    discarded:
        Indices discarded by the incentive mechanism (empty for baselines).
    attackers:
        Indices designated malicious this round (empty when attacks are off).
    rewards:
        Mapping of client index to the reward issued this round.
    extras:
        Free-form per-round diagnostics (e.g. delay decomposition).
    """

    round_index: int
    delay: float
    accuracy: float
    train_loss: float = 0.0
    elapsed_time: float = 0.0
    participants: list[int] = field(default_factory=list)
    discarded: list[int] = field(default_factory=list)
    attackers: list[int] = field(default_factory=list)
    rewards: dict[int, float] = field(default_factory=dict)
    extras: dict = field(default_factory=dict)


@dataclass
class TrainingHistory:
    """Ordered collection of :class:`RoundRecord` with summary helpers."""

    label: str = "run"
    rounds: list[RoundRecord] = field(default_factory=list)

    def append(self, record: RoundRecord) -> None:
        """Append a record; round indices must be strictly increasing."""
        if self.rounds and record.round_index <= self.rounds[-1].round_index:
            raise ValueError(
                f"round_index must increase; got {record.round_index} after "
                f"{self.rounds[-1].round_index}"
            )
        self.rounds.append(record)

    def __len__(self) -> int:
        return len(self.rounds)

    # -- series used by the figures -----------------------------------------
    @property
    def delays(self) -> np.ndarray:
        """Per-round delay d_i."""
        return np.array([r.delay for r in self.rounds], dtype=np.float64)

    @property
    def accuracies(self) -> np.ndarray:
        """Per-round average accuracy."""
        return np.array([r.accuracy for r in self.rounds], dtype=np.float64)

    @property
    def elapsed_times(self) -> np.ndarray:
        """Cumulative simulated time at the end of each round."""
        return np.array([r.elapsed_time for r in self.rounds], dtype=np.float64)

    def average_delay(self) -> float:
        """The paper's average delay Σ d_i / r."""
        return float(self.delays.mean()) if self.rounds else 0.0

    def running_average_delay(self) -> np.ndarray:
        """Running mean of the per-round delay (the y-axis of Figs. 4a / 7a)."""
        if not self.rounds:
            return np.zeros(0, dtype=np.float64)
        d = self.delays
        return np.cumsum(d) / np.arange(1, d.shape[0] + 1)

    def average_accuracy(self) -> float:
        """The paper's average accuracy Σ acc_i / n over all recorded rounds."""
        return float(self.accuracies.mean()) if self.rounds else 0.0

    def final_accuracy(self, window: int = 5) -> float:
        """Mean accuracy over the last ``window`` rounds (converged accuracy)."""
        if not self.rounds:
            return 0.0
        window = max(1, min(window, len(self.rounds)))
        return float(self.accuracies[-window:].mean())

    def accuracy_vs_time(self) -> tuple[np.ndarray, np.ndarray]:
        """(elapsed_time, accuracy) series for the accuracy-vs-time figures."""
        return self.elapsed_times, self.accuracies

    def time_to_accuracy(self, threshold: float) -> float | None:
        """First elapsed time at which the accuracy reaches ``threshold`` (None if never)."""
        for record in self.rounds:
            if record.accuracy >= threshold:
                return record.elapsed_time
        return None

    def total_rewards(self) -> dict[int, float]:
        """Total reward per client accumulated over the run."""
        totals: dict[int, float] = {}
        for record in self.rounds:
            for client, amount in record.rewards.items():
                totals[client] = totals.get(client, 0.0) + float(amount)
        return totals
