"""Aggregation rules.

Three aggregation schemes appear in the paper:

* *simple averaging* (Algorithm 1 line 24): every uploaded vector gets weight
  ``1/n`` regardless of contribution;
* *sample-size weighting* (classic FedAvg): weights proportional to each
  client's self-reported data size — exactly the self-reporting the paper
  argues cannot be trusted;
* *fair aggregation* (Equation 1): weights ``p_i = θ_i / Σθ_k`` derived from
  the cosine-distance contributions produced by Algorithm 2, requiring no
  self-reported information.

All functions take a ``(k, d)`` matrix of stacked parameter vectors and return
the aggregated ``(d,)`` vector; they are pure and vectorised.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "AggregationError",
    "simple_average",
    "weighted_average",
    "contribution_weights",
    "fair_aggregate",
    "stack_updates",
    "aggregate_client_updates",
    "staleness_weights",
    "merge_stale_updates",
]


class AggregationError(ValueError):
    """An aggregation was asked to operate on invalid (e.g. empty) input.

    Subclasses :class:`ValueError` so existing callers that catch the generic
    type keep working; new code can catch the precise type.
    """


def _check_matrix(updates: np.ndarray) -> np.ndarray:
    m = np.asarray(updates, dtype=np.float64)
    if m.ndim != 2 or m.shape[0] == 0:
        raise AggregationError(
            f"expected a non-empty (num_clients, dim) update matrix, got shape {m.shape}"
        )
    return m


def simple_average(updates: np.ndarray) -> np.ndarray:
    """Unweighted mean of the uploaded vectors (Algorithm 1, 'Simple Average')."""
    return _check_matrix(updates).mean(axis=0)


def weighted_average(updates: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Convex combination of the uploaded vectors with explicit ``weights``.

    The weights are normalised to sum to one; they must be non-negative and
    not all zero.
    """
    m = _check_matrix(updates)
    w = np.asarray(weights, dtype=np.float64).ravel()
    if w.shape[0] != m.shape[0]:
        raise AggregationError(
            f"expected {m.shape[0]} weights (one per update), got {w.shape[0]}"
        )
    if np.any(w < 0):
        raise AggregationError("aggregation weights must be non-negative")
    total = w.sum()
    if total <= 0:
        raise AggregationError("aggregation weights must not all be zero")
    return (w[:, None] / total * m).sum(axis=0)


def contribution_weights(thetas: np.ndarray, *, eps: float = 1e-12) -> np.ndarray:
    """Normalise cosine-distance contributions θ_i into weights p_i = θ_i / Σθ_k.

    A degenerate all-zero θ vector (every client identical to the global
    update) falls back to uniform weights, which coincides with simple
    averaging — the natural limit of Equation (1).
    """
    t = np.asarray(thetas, dtype=np.float64).ravel()
    if t.shape[0] == 0:
        raise AggregationError("at least one contribution value is required")
    if np.any(t < 0):
        raise AggregationError("contribution values (cosine distances) must be non-negative")
    total = t.sum()
    if total < eps:
        return np.full(t.shape[0], 1.0 / t.shape[0])
    return t / total


def fair_aggregate(updates: np.ndarray, thetas: np.ndarray) -> np.ndarray:
    """Fair aggregation of Equation (1): weight each update by its contribution.

    Parameters
    ----------
    updates:
        ``(k, d)`` matrix of uploaded parameter vectors.
    thetas:
        Length-``k`` vector of cosine distances θ_i between each upload and the
        (simple-average) global update, as computed by Algorithm 2.
    """
    weights = contribution_weights(thetas)
    return weighted_average(updates, weights)


def staleness_weights(staleness: np.ndarray, *, decay: float = 0.5) -> np.ndarray:
    """Polynomial staleness discounting for asynchronous rounds.

    An update that arrives ``s`` rounds late contributes with weight
    ``(1 + s) ** -decay`` relative to a fresh update's weight of 1 — the
    standard staleness function of asynchronous FL (Xie et al., FedAsync).
    ``decay = 0`` treats stale updates as fresh; larger values discount them
    harder.  Staleness values must be non-negative.
    """
    s = np.asarray(staleness, dtype=np.float64).ravel()
    if np.any(s < 0):
        raise AggregationError("staleness values must be non-negative")
    if decay < 0:
        raise AggregationError(f"staleness decay must be >= 0, got {decay}")
    return (1.0 + s) ** (-float(decay))


def merge_stale_updates(
    fresh_global: np.ndarray,
    fresh_count: int,
    stale_updates: np.ndarray,
    staleness: np.ndarray,
    *,
    decay: float = 0.5,
) -> np.ndarray:
    """Fold staleness-discounted late updates into an already-aggregated global.

    ``fresh_global`` is the round's aggregate over ``fresh_count`` on-time
    updates (each carrying unit weight); every row of ``stale_updates`` joins
    the convex combination with weight :func:`staleness_weights` of its
    ``staleness``.  With no stale rows the fresh aggregate is returned
    unchanged.
    """
    if fresh_count <= 0:
        raise AggregationError(f"fresh_count must be positive, got {fresh_count}")
    stale = np.asarray(stale_updates, dtype=np.float64)
    if stale.size == 0:
        return np.asarray(fresh_global, dtype=np.float64).copy()
    if stale.ndim != 2:
        raise AggregationError(
            f"expected a (num_stale, dim) stale-update matrix, got shape {stale.shape}"
        )
    w_stale = staleness_weights(staleness, decay=decay)
    if w_stale.shape[0] != stale.shape[0]:
        raise AggregationError(
            f"expected {stale.shape[0]} staleness values, got {w_stale.shape[0]}"
        )
    rows = np.vstack([np.asarray(fresh_global, dtype=np.float64)[None, :], stale])
    weights = np.concatenate([[float(fresh_count)], w_stale])
    return weighted_average(rows, weights)


def stack_updates(updates: list) -> np.ndarray:
    """Stack client updates into one ``(k, d)`` ``float64`` gradient matrix.

    Accepts anything with a ``parameters`` attribute (e.g.
    :class:`~repro.fl.client.ClientUpdate`) or raw vectors.  This is the single
    entry point through which per-client objects become the stacked matrix the
    vectorised aggregation/incentive kernels operate on.
    """
    if not updates:
        raise AggregationError("cannot stack an empty list of client updates")
    rows = [
        np.asarray(getattr(u, "parameters", u), dtype=np.float64).ravel() for u in updates
    ]
    return np.stack(rows, axis=0)


def aggregate_client_updates(
    updates: list,
    *,
    scheme: str = "simple",
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Aggregate a list of client updates in one stacked, vectorised pass.

    Parameters
    ----------
    updates:
        Client updates (or raw vectors); see :func:`stack_updates`.
    scheme:
        ``"simple"`` (unweighted mean), ``"samples"`` (weight by each update's
        ``num_samples`` attribute — classic FedAvg), or ``"weighted"``
        (explicit ``weights``).
    weights:
        Required for ``scheme="weighted"``; ignored otherwise.
    """
    matrix = stack_updates(updates)
    if scheme == "simple":
        return simple_average(matrix)
    if scheme == "samples":
        sizes = np.array([float(getattr(u, "num_samples", 1.0)) for u in updates])
        return weighted_average(matrix, sizes)
    if scheme == "weighted":
        if weights is None:
            raise AggregationError("scheme='weighted' requires explicit weights")
        return weighted_average(matrix, weights)
    raise AggregationError(
        f"unknown aggregation scheme {scheme!r}; expected 'simple', 'samples' or 'weighted'"
    )
