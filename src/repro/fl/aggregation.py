"""Aggregation rules.

Three aggregation schemes appear in the paper:

* *simple averaging* (Algorithm 1 line 24): every uploaded vector gets weight
  ``1/n`` regardless of contribution;
* *sample-size weighting* (classic FedAvg): weights proportional to each
  client's self-reported data size — exactly the self-reporting the paper
  argues cannot be trusted;
* *fair aggregation* (Equation 1): weights ``p_i = θ_i / Σθ_k`` derived from
  the cosine-distance contributions produced by Algorithm 2, requiring no
  self-reported information.

All functions take a ``(k, d)`` matrix of stacked parameter vectors and return
the aggregated ``(d,)`` vector; they are pure and vectorised.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "AggregationError",
    "simple_average",
    "weighted_average",
    "contribution_weights",
    "fair_aggregate",
    "stack_updates",
    "aggregate_client_updates",
]


class AggregationError(ValueError):
    """An aggregation was asked to operate on invalid (e.g. empty) input.

    Subclasses :class:`ValueError` so existing callers that catch the generic
    type keep working; new code can catch the precise type.
    """


def _check_matrix(updates: np.ndarray) -> np.ndarray:
    m = np.asarray(updates, dtype=np.float64)
    if m.ndim != 2 or m.shape[0] == 0:
        raise AggregationError(
            f"expected a non-empty (num_clients, dim) update matrix, got shape {m.shape}"
        )
    return m


def simple_average(updates: np.ndarray) -> np.ndarray:
    """Unweighted mean of the uploaded vectors (Algorithm 1, 'Simple Average')."""
    return _check_matrix(updates).mean(axis=0)


def weighted_average(updates: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Convex combination of the uploaded vectors with explicit ``weights``.

    The weights are normalised to sum to one; they must be non-negative and
    not all zero.
    """
    m = _check_matrix(updates)
    w = np.asarray(weights, dtype=np.float64).ravel()
    if w.shape[0] != m.shape[0]:
        raise AggregationError(
            f"expected {m.shape[0]} weights (one per update), got {w.shape[0]}"
        )
    if np.any(w < 0):
        raise AggregationError("aggregation weights must be non-negative")
    total = w.sum()
    if total <= 0:
        raise AggregationError("aggregation weights must not all be zero")
    return (w[:, None] / total * m).sum(axis=0)


def contribution_weights(thetas: np.ndarray, *, eps: float = 1e-12) -> np.ndarray:
    """Normalise cosine-distance contributions θ_i into weights p_i = θ_i / Σθ_k.

    A degenerate all-zero θ vector (every client identical to the global
    update) falls back to uniform weights, which coincides with simple
    averaging — the natural limit of Equation (1).
    """
    t = np.asarray(thetas, dtype=np.float64).ravel()
    if t.shape[0] == 0:
        raise AggregationError("at least one contribution value is required")
    if np.any(t < 0):
        raise AggregationError("contribution values (cosine distances) must be non-negative")
    total = t.sum()
    if total < eps:
        return np.full(t.shape[0], 1.0 / t.shape[0])
    return t / total


def fair_aggregate(updates: np.ndarray, thetas: np.ndarray) -> np.ndarray:
    """Fair aggregation of Equation (1): weight each update by its contribution.

    Parameters
    ----------
    updates:
        ``(k, d)`` matrix of uploaded parameter vectors.
    thetas:
        Length-``k`` vector of cosine distances θ_i between each upload and the
        (simple-average) global update, as computed by Algorithm 2.
    """
    weights = contribution_weights(thetas)
    return weighted_average(updates, weights)


def stack_updates(updates: list) -> np.ndarray:
    """Stack client updates into one ``(k, d)`` ``float64`` gradient matrix.

    Accepts anything with a ``parameters`` attribute (e.g.
    :class:`~repro.fl.client.ClientUpdate`) or raw vectors.  This is the single
    entry point through which per-client objects become the stacked matrix the
    vectorised aggregation/incentive kernels operate on.
    """
    if not updates:
        raise AggregationError("cannot stack an empty list of client updates")
    rows = [
        np.asarray(getattr(u, "parameters", u), dtype=np.float64).ravel() for u in updates
    ]
    return np.stack(rows, axis=0)


def aggregate_client_updates(
    updates: list,
    *,
    scheme: str = "simple",
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Aggregate a list of client updates in one stacked, vectorised pass.

    Parameters
    ----------
    updates:
        Client updates (or raw vectors); see :func:`stack_updates`.
    scheme:
        ``"simple"`` (unweighted mean), ``"samples"`` (weight by each update's
        ``num_samples`` attribute — classic FedAvg), or ``"weighted"``
        (explicit ``weights``).
    weights:
        Required for ``scheme="weighted"``; ignored otherwise.
    """
    matrix = stack_updates(updates)
    if scheme == "simple":
        return simple_average(matrix)
    if scheme == "samples":
        sizes = np.array([float(getattr(u, "num_samples", 1.0)) for u in updates])
        return weighted_average(matrix, sizes)
    if scheme == "weighted":
        if weights is None:
            raise AggregationError("scheme='weighted' requires explicit weights")
        return weighted_average(matrix, weights)
    raise AggregationError(
        f"unknown aggregation scheme {scheme!r}; expected 'simple', 'samples' or 'weighted'"
    )
