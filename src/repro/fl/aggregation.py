"""Aggregation rules.

Three aggregation schemes appear in the paper:

* *simple averaging* (Algorithm 1 line 24): every uploaded vector gets weight
  ``1/n`` regardless of contribution;
* *sample-size weighting* (classic FedAvg): weights proportional to each
  client's self-reported data size — exactly the self-reporting the paper
  argues cannot be trusted;
* *fair aggregation* (Equation 1): weights ``p_i = θ_i / Σθ_k`` derived from
  the cosine-distance contributions produced by Algorithm 2, requiring no
  self-reported information.

All functions take a ``(k, d)`` matrix of stacked parameter vectors and return
the aggregated ``(d,)`` vector; they are pure and vectorised.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "simple_average",
    "weighted_average",
    "contribution_weights",
    "fair_aggregate",
]


def _check_matrix(updates: np.ndarray) -> np.ndarray:
    m = np.asarray(updates, dtype=np.float64)
    if m.ndim != 2 or m.shape[0] == 0:
        raise ValueError(
            f"expected a non-empty (num_clients, dim) update matrix, got shape {m.shape}"
        )
    return m


def simple_average(updates: np.ndarray) -> np.ndarray:
    """Unweighted mean of the uploaded vectors (Algorithm 1, 'Simple Average')."""
    return _check_matrix(updates).mean(axis=0)


def weighted_average(updates: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Convex combination of the uploaded vectors with explicit ``weights``.

    The weights are normalised to sum to one; they must be non-negative and
    not all zero.
    """
    m = _check_matrix(updates)
    w = np.asarray(weights, dtype=np.float64).ravel()
    if w.shape[0] != m.shape[0]:
        raise ValueError(
            f"expected {m.shape[0]} weights (one per update), got {w.shape[0]}"
        )
    if np.any(w < 0):
        raise ValueError("aggregation weights must be non-negative")
    total = w.sum()
    if total <= 0:
        raise ValueError("aggregation weights must not all be zero")
    return (w[:, None] / total * m).sum(axis=0)


def contribution_weights(thetas: np.ndarray, *, eps: float = 1e-12) -> np.ndarray:
    """Normalise cosine-distance contributions θ_i into weights p_i = θ_i / Σθ_k.

    A degenerate all-zero θ vector (every client identical to the global
    update) falls back to uniform weights, which coincides with simple
    averaging — the natural limit of Equation (1).
    """
    t = np.asarray(thetas, dtype=np.float64).ravel()
    if t.shape[0] == 0:
        raise ValueError("at least one contribution value is required")
    if np.any(t < 0):
        raise ValueError("contribution values (cosine distances) must be non-negative")
    total = t.sum()
    if total < eps:
        return np.full(t.shape[0], 1.0 / t.shape[0])
    return t / total


def fair_aggregate(updates: np.ndarray, thetas: np.ndarray) -> np.ndarray:
    """Fair aggregation of Equation (1): weight each update by its contribution.

    Parameters
    ----------
    updates:
        ``(k, d)`` matrix of uploaded parameter vectors.
    thetas:
        Length-``k`` vector of cosine distances θ_i between each upload and the
        (simple-average) global update, as computed by Algorithm 2.
    """
    weights = contribution_weights(thetas)
    return weighted_average(updates, weights)
