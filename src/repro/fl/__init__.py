"""Federated-learning substrate.

Implements the learning half of FAIR-BFL and both FL baselines used in the
paper's evaluation:

* :mod:`repro.fl.client` — per-client local SGD update (Algorithm 1,
  Procedure I), including FedProx's proximal variant;
* :mod:`repro.fl.aggregation` — simple averaging, sample-size weighting, and
  the paper's contribution-weighted *fair aggregation* (Equation 1);
* :mod:`repro.fl.robust` — robust-aggregation defenses (norm clipping,
  Krum/multi-Krum, coordinate-wise median, trimmed mean) composable as
  clip → filter → aggregate pipelines (see ``docs/threat_model.md``);
* :mod:`repro.fl.selection` — random λn client selection and
  contribution-based selection (the discard strategy's side effect);
* :mod:`repro.fl.server` — the centralised parameter server used by the
  FedAvg / FedProx baselines;
* :mod:`repro.fl.fedavg`, :mod:`repro.fl.fedprox` — the baseline trainers;
* :mod:`repro.fl.history` — per-round records shared by all trainers.
"""

from repro.fl.aggregation import (
    contribution_weights,
    fair_aggregate,
    simple_average,
    weighted_average,
)
from repro.fl.client import ClientUpdate, FLClient, LocalTrainingConfig
from repro.fl.robust import DEFENSES, RobustAggregator, RobustOutcome, make_defense
from repro.fl.fedavg import FedAvgConfig, FedAvgTrainer
from repro.fl.fedprox import FedProxConfig, FedProxTrainer
from repro.fl.history import RoundRecord, TrainingHistory
from repro.fl.selection import ContributionBasedSelector, RandomSelector
from repro.fl.server import CentralServer

__all__ = [
    "contribution_weights",
    "fair_aggregate",
    "simple_average",
    "weighted_average",
    "ClientUpdate",
    "FLClient",
    "LocalTrainingConfig",
    "DEFENSES",
    "RobustAggregator",
    "RobustOutcome",
    "make_defense",
    "FedAvgConfig",
    "FedAvgTrainer",
    "FedProxConfig",
    "FedProxTrainer",
    "RoundRecord",
    "TrainingHistory",
    "ContributionBasedSelector",
    "RandomSelector",
    "CentralServer",
]
