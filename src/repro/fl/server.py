"""Central parameter server for the FL baselines.

FedAvg and FedProx retain the conventional single-server topology the paper
contrasts against (its single-point-of-failure motivates BFL in the first
place).  The server holds the global model parameters, collects client
updates, aggregates them, and redistributes the result.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.fl.aggregation import (
    AggregationError,
    aggregate_client_updates,
    stack_updates,
    weighted_average,
)
from repro.fl.client import ClientUpdate
from repro.fl.robust import RobustOutcome, make_defense
from repro.nn.metrics import accuracy
from repro.nn.module import Module
from repro.nn.parameters import get_flat_parameters, set_flat_parameters

__all__ = ["CentralServer"]


class CentralServer:
    """The centralised aggregator used by FedAvg / FedProx.

    Parameters
    ----------
    model_factory:
        Zero-argument callable building the global model; the server keeps one
        instance for parameter storage and test-set evaluation.
    aggregation:
        ``"simple"`` (unweighted mean) or ``"samples"`` (weight by each
        client's reported sample count, classic FedAvg).
    defense:
        Optional robust-aggregation defense (``repro.fl.robust`` name or
        ``"+"``-chain) the stacked update matrix passes through before
        aggregation; ``"none"`` keeps the classic path.
    defense_fraction:
        Adversary fraction the defense is sized for.
    """

    def __init__(
        self,
        model_factory: Callable[[], Module],
        *,
        aggregation: str = "simple",
        defense: str = "none",
        defense_fraction: float = 0.2,
    ) -> None:
        if aggregation not in {"simple", "samples"}:
            raise ValueError(
                f"aggregation must be 'simple' or 'samples', got {aggregation!r}"
            )
        self.model = model_factory()
        self.aggregation = aggregation
        self.defense = make_defense(defense, attacker_fraction=defense_fraction)
        #: The defense's outcome for the most recent round (None when no
        #: defense is configured or no round has run yet).
        self.last_defense_outcome: RobustOutcome | None = None
        self.global_parameters = get_flat_parameters(self.model)
        self.round_count = 0

    def aggregate(self, updates: list[ClientUpdate]) -> np.ndarray:
        """Aggregate the round's client updates into new global parameters.

        Routes through the vectorised
        :func:`~repro.fl.aggregation.aggregate_client_updates` path (one
        stacked matrix, no per-client Python loops) and raises the same
        :class:`~repro.fl.aggregation.AggregationError` as ``simple_average``
        does on empty input.  With a defense configured the stacked matrix
        first passes through the robust pipeline in direction space (rows
        minus the current global parameters): an aggregate-replacing defense
        (median / trimmed mean) supplies the new global directly, a filtering
        defense hands its clipped survivors to the configured aggregation
        scheme.
        """
        if not updates:
            raise AggregationError("cannot aggregate an empty list of client updates")
        if self.defense is None:
            new_global = aggregate_client_updates(updates, scheme=self.aggregation)
        else:
            matrix = stack_updates(updates)
            outcome = self.defense.apply(matrix - self.global_parameters[None, :])
            self.last_defense_outcome = outcome
            if outcome.replaces_aggregation:
                new_global = self.global_parameters + outcome.aggregate
            else:
                rows = self.global_parameters[None, :] + outcome.deltas
                if self.aggregation == "samples":
                    sizes = np.array(
                        [
                            float(getattr(updates[i], "num_samples", 1.0))
                            for i in outcome.kept_indices
                        ]
                    )
                    new_global = weighted_average(rows, sizes)
                else:
                    new_global = rows.mean(axis=0)
        self.global_parameters = new_global
        set_flat_parameters(self.model, new_global)
        self.round_count += 1
        return new_global

    def commit_global(self, new_global: np.ndarray) -> np.ndarray:
        """Install an externally aggregated global parameter vector.

        The streaming cohort round (see ``FedAvgTrainer._run_round_streaming``)
        folds client updates into a weighted sum as they are produced instead
        of handing the server a materialised update list; this is its hook to
        publish the result while keeping the server's bookkeeping (model
        weights, round counter) identical to :meth:`aggregate`.
        """
        new_global = np.asarray(new_global, dtype=np.float64)
        self.global_parameters = new_global
        set_flat_parameters(self.model, new_global)
        self.round_count += 1
        return new_global

    def evaluate(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Accuracy of the current global parameters on a held-out test set."""
        set_flat_parameters(self.model, self.global_parameters)
        self.model.eval()
        logits = self.model.forward(images)
        return accuracy(logits, labels)
