"""Central parameter server for the FL baselines.

FedAvg and FedProx retain the conventional single-server topology the paper
contrasts against (its single-point-of-failure motivates BFL in the first
place).  The server holds the global model parameters, collects client
updates, aggregates them, and redistributes the result.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.fl.aggregation import AggregationError, aggregate_client_updates
from repro.fl.client import ClientUpdate
from repro.nn.metrics import accuracy
from repro.nn.module import Module
from repro.nn.parameters import get_flat_parameters, set_flat_parameters

__all__ = ["CentralServer"]


class CentralServer:
    """The centralised aggregator used by FedAvg / FedProx.

    Parameters
    ----------
    model_factory:
        Zero-argument callable building the global model; the server keeps one
        instance for parameter storage and test-set evaluation.
    aggregation:
        ``"simple"`` (unweighted mean) or ``"samples"`` (weight by each
        client's reported sample count, classic FedAvg).
    """

    def __init__(
        self,
        model_factory: Callable[[], Module],
        *,
        aggregation: str = "simple",
    ) -> None:
        if aggregation not in {"simple", "samples"}:
            raise ValueError(
                f"aggregation must be 'simple' or 'samples', got {aggregation!r}"
            )
        self.model = model_factory()
        self.aggregation = aggregation
        self.global_parameters = get_flat_parameters(self.model)
        self.round_count = 0

    def aggregate(self, updates: list[ClientUpdate]) -> np.ndarray:
        """Aggregate the round's client updates into new global parameters.

        Routes through the vectorised
        :func:`~repro.fl.aggregation.aggregate_client_updates` path (one
        stacked matrix, no per-client Python loops) and raises the same
        :class:`~repro.fl.aggregation.AggregationError` as ``simple_average``
        does on empty input.
        """
        if not updates:
            raise AggregationError("cannot aggregate an empty list of client updates")
        new_global = aggregate_client_updates(updates, scheme=self.aggregation)
        self.global_parameters = new_global
        set_flat_parameters(self.model, new_global)
        self.round_count += 1
        return new_global

    def evaluate(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Accuracy of the current global parameters on a held-out test set."""
        set_flat_parameters(self.model, self.global_parameters)
        self.model.eval()
        logits = self.model.forward(images)
        return accuracy(logits, labels)
