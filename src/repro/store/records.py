"""Typed, versioned JSON records — the one serialiser for persisted results.

Everything the repository writes as a machine-readable result goes through
this module: the run store's per-run records (:mod:`repro.store.runstore`)
and the benchmark harness's ``BENCH_*.json`` trajectory files
(``benchmarks/conftest.py``) share :func:`write_json_record`, so every
artifact carries the same ``schema_version`` stamp and the same
JSON-sanitisation rules instead of each writer hand-rolling its own.

The history payload keeps **every** :class:`~repro.fl.history.RoundRecord`
field — including the free-form ``extras`` diagnostics the lighter CSV/JSON
exporters of :mod:`repro.core.io` drop — because a cached run must stand in
for a recomputed one.  New ``RoundRecord`` fields ride along automatically:
the payload is built by iterating the dataclass fields, not a hand-kept
list.
"""

from __future__ import annotations

import dataclasses
import json
import os
from datetime import datetime, timezone
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.core.results import summarize_history
from repro.fl.history import RoundRecord, TrainingHistory

__all__ = [
    "STORE_SCHEMA_VERSION",
    "json_sanitize",
    "write_json_record",
    "history_to_payload",
    "history_from_payload",
    "run_record_payload",
]

#: Version stamped into every persisted record.  Readers treat a record with
#: a different version as stale (``RunStore.get`` misses, ``gc`` collects).
STORE_SCHEMA_VERSION = 1

#: Per-round membership lists (participants/discarded/attackers) longer than
#: this are offloaded to the record's compressed ``.npz`` sidecar instead of
#: being inlined as JSON — a 100k-client round would otherwise write ~1 MB of
#: JSON integers *per round per field*.
OFFLOAD_LIST_THRESHOLD = 1024

#: The RoundRecord fields eligible for sidecar offload (flat int lists).
_OFFLOADABLE_FIELDS = ("participants", "discarded", "attackers")


def json_sanitize(value: object) -> object:
    """Recursively convert ``value`` into plain JSON-serialisable types.

    NumPy scalars/arrays become Python scalars/lists, dataclasses and
    mappings become string-keyed dicts, tuples/sets become lists, and any
    other object falls back to ``str(value)`` — so free-form ``extras``
    (delay breakdowns, trace digests, ...) always persist rather than
    crashing the writer.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [json_sanitize(v) for v in value.tolist()]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: json_sanitize(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        return {str(k): json_sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [json_sanitize(v) for v in value]
    return str(value)


def write_json_record(path: str | Path, payload: Mapping[str, object], *, kind: str) -> Path:
    """Write ``payload`` as a versioned JSON record and return the path.

    The record gains ``schema_version`` (:data:`STORE_SCHEMA_VERSION`) and
    ``record_kind`` (``"run"`` for store entries, ``"benchmark"`` for
    ``BENCH_*.json``), is sanitised through :func:`json_sanitize`, and is
    written atomically (temp file + rename) so a killed sweep never leaves a
    half-written record for ``--resume`` to trip over.
    """
    path = Path(path)
    record: dict[str, object] = {
        "schema_version": STORE_SCHEMA_VERSION,
        "record_kind": kind,
    }
    record.update(json_sanitize(dict(payload)))
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    os.replace(tmp, path)
    return path


def history_to_payload(history: TrainingHistory, *, offload: dict | None = None) -> dict:
    """The full JSON payload of a history (all round fields, extras included).

    With ``offload`` given (a mutable dict), membership lists longer than
    :data:`OFFLOAD_LIST_THRESHOLD` are moved into it as int64 arrays keyed
    ``round<i>_<field>`` and replaced in the JSON by a
    ``{"__npz__": key, "count": n}`` reference; the caller persists the dict
    to the record's ``.npz`` sidecar.  Without it everything inlines as before.
    """
    rounds = []
    for index, record in enumerate(history.rounds):
        row = {}
        for f in dataclasses.fields(record):
            value = getattr(record, f.name)
            if (
                offload is not None
                and f.name in _OFFLOADABLE_FIELDS
                and len(value) > OFFLOAD_LIST_THRESHOLD
            ):
                ref = f"round{index}_{f.name}"
                offload[ref] = np.asarray(value, dtype=np.int64)
                row[f.name] = {"__npz__": ref, "count": len(value)}
            else:
                row[f.name] = json_sanitize(value)
        rounds.append(row)
    return {"label": history.label, "rounds": rounds}


#: Per-field decoders restoring the types ``json_sanitize`` flattened.
#: Fields of :class:`RoundRecord` without an entry here (e.g. ones added
#: after this schema shipped) are passed through as their persisted JSON
#: value, so writer and reader stay symmetric without a hand-kept list.
_ROUND_DECODERS = {
    "round_index": int,
    "delay": float,
    "accuracy": float,
    "train_loss": float,
    "elapsed_time": float,
    "participants": lambda v: [int(x) for x in v],
    "discarded": lambda v: [int(x) for x in v],
    "attackers": lambda v: [int(x) for x in v],
    "rewards": lambda v: {int(k): float(x) for k, x in v.items()},
    "extras": dict,
}


def history_from_payload(
    payload: Mapping[str, object], *, arrays: Mapping[str, object] | None = None
) -> TrainingHistory:
    """Rebuild a :class:`TrainingHistory` written by :func:`history_to_payload`.

    Scalar fields regain their numeric types and reward keys their int form;
    ``extras`` stay as the plain JSON values they were persisted as (their
    producers' rich objects were flattened by :func:`json_sanitize`).  Like
    the writer, the reader iterates the :class:`RoundRecord` dataclass
    fields, so a field added later is persisted *and* reloaded (as its JSON
    form) instead of being silently dropped on read.

    ``arrays`` resolves ``{"__npz__": ...}`` sidecar references produced by
    the writer's offload mode; a reference with no matching array raises
    ``KeyError`` (the run store treats that as an unloadable record).
    """
    history = TrainingHistory(label=str(payload.get("label", "run")))
    record_fields = dataclasses.fields(RoundRecord)
    for row in payload.get("rounds", []):
        kwargs = {}
        for f in record_fields:
            if f.name not in row:
                continue
            value = row[f.name]
            if isinstance(value, Mapping) and "__npz__" in value:
                ref = str(value["__npz__"])
                if arrays is None or ref not in arrays:
                    raise KeyError(
                        f"round field {f.name!r} references sidecar array {ref!r} "
                        "but no such array is available"
                    )
                value = np.asarray(arrays[ref]).tolist()
            decode = _ROUND_DECODERS.get(f.name)
            kwargs[f.name] = decode(value) if decode is not None else value
        history.append(RoundRecord(**kwargs))
    return history


def run_record_payload(
    spec, result, *, key: str, fingerprint: str, offload: dict | None = None
) -> dict:
    """The persisted form of one executed scenario.

    ``spec`` round-trips through :meth:`ScenarioSpec.to_mapping` (so a stored
    record can be re-validated and re-keyed later), the history keeps every
    round field, and the one-line summary is precomputed so ``repro report``
    can tabulate a store without replaying histories.  ``offload`` is passed
    through to :func:`history_to_payload` for sidecar offload of huge
    membership lists.
    """
    return {
        "key": key,
        "system_fingerprint": fingerprint,
        "system": result.system,
        "spec": spec.to_mapping(),
        "summary": summarize_history(result.history),
        "history": history_to_payload(result.history, offload=offload),
        "extras": json_sanitize(dict(result.extras)),
        "created_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
