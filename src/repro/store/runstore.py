"""The content-addressed run store.

A :class:`RunStore` persists one JSON record per executed scenario under a
root directory (``results/store/`` by default), addressed by the scenario's
content key (:func:`repro.store.keys.spec_key`).  Records are sharded by the
first two hex digits of the key (``results/store/ab/ab12....json``) so a
large sweep never piles thousands of files into one directory, and every
write is atomic, so a killed ``repro sweep`` leaves only complete records
behind — which is exactly what ``sweep --resume`` needs to recompute only
the missing cells.

Because the key hashes *inputs* (canonical spec + seed + system capability
fingerprint), the store needs no invalidation protocol: a changed field, a
new ``ScenarioSpec`` field, a bumped key schema, or a swapped system
registration simply hashes to a different address and misses.  Orphaned
records from old code are reclaimed by :meth:`RunStore.gc`.  See
``docs/results.md`` for the layout and semantics.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.core.results import summarize_history
from repro.runner.scenario import ScenarioError, ScenarioSpec
from repro.store.keys import spec_key
from repro.store.records import (
    STORE_SCHEMA_VERSION,
    history_from_payload,
    run_record_payload,
    write_json_record,
)
from repro.systems.registry import RunResult, SystemRegistryError, capability_fingerprint

__all__ = ["DEFAULT_STORE_ROOT", "RunStoreError", "StoredRun", "RunStore"]

#: Where runs land when no root is given (relative to the working directory).
DEFAULT_STORE_ROOT = Path("results") / "store"


class RunStoreError(ValueError):
    """A run-store operation failed (missing key, unreadable record, ...)."""


@dataclass(frozen=True)
class StoredRun:
    """One persisted run: its content key, reloaded spec/result, and origin.

    Attributes
    ----------
    key:
        The 64-hex-digit content address of the run.
    spec:
        The re-validated :class:`ScenarioSpec` the run was computed from.
    result:
        The reloaded typed :class:`~repro.systems.registry.RunResult`
        (history rounds keep every field, extras included).
    fingerprint:
        The system capability fingerprint recorded at write time.
    path:
        The JSON record file backing this run.
    created_at:
        ISO-8601 UTC timestamp of when the record was written.
    checkpoint:
        The trainer's resumable-state blob
        (:meth:`repro.runner.checkpoint.CheckpointMixin.checkpoint_state`)
        persisted alongside the run, or ``None`` — partial-rung records
        written by :meth:`repro.runner.engine.ExperimentEngine.run_partial`
        carry one so a promoted ASHA trial continues instead of replaying.
    """

    key: str
    spec: ScenarioSpec
    result: RunResult
    fingerprint: str
    path: Path
    created_at: str = ""
    summary_record: Mapping[str, object] = field(default_factory=dict)
    checkpoint: bytes | None = None

    @property
    def summary(self) -> dict:
        """The standard one-line summary of the run.

        Served from the record's precomputed ``summary`` field when present
        (so ``repro report`` never replays histories), recomputed from the
        history otherwise.
        """
        if self.summary_record:
            return dict(self.summary_record)
        return summarize_history(self.result.history)


class RunStore:
    """Content-addressed persistence for :class:`RunResult` records.

    Parameters
    ----------
    root:
        Directory the records live under (created lazily on first write).
    compress:
        When True, each :meth:`put` also writes ``<key>.npz`` with the
        per-round scalar series (delays, accuracies, elapsed times, train
        losses) via :func:`numpy.savez_compressed` — a plotting-friendly
        side artifact; the JSON record stays authoritative for those.

    Regardless of ``compress``, a record whose rounds carry at least
    :attr:`OFFLOAD_TOTAL_THRESHOLD` membership entries in total (a 100k-client
    cohort run lists every participant every round) *offloads* the huge
    per-round lists into the same ``.npz`` sidecar instead of inlining them as
    JSON integers; the JSON keeps ``{"__npz__": ...}`` references that
    :meth:`load` resolves transparently.
    """

    #: Records whose rounds carry at least this many membership entries in
    #: total (participants + discarded + attackers across all rounds) write
    #: the large lists to the compressed sidecar rather than the JSON record.
    OFFLOAD_TOTAL_THRESHOLD = 10_000

    def __init__(self, root: str | Path = DEFAULT_STORE_ROOT, *, compress: bool = False):
        self.root = Path(root)
        self.compress = bool(compress)
        #: Lazily-built set of record keys under the root.  ``keys()`` (and
        #: therefore ``runs()``/``query()``) would otherwise rescan the 2-hex
        #: shard directories on every call; the index is built on first use,
        #: updated incrementally by :meth:`put`, and invalidated by
        #: :meth:`gc`/:meth:`refresh_index`.  Because *other processes* write
        #: to the same root (``repro serve`` worker processes, concurrent
        #: sweeps), every index read re-validates against the on-disk shard
        #: directories first: :meth:`_shard_stamp` fingerprints their names
        #: and mtimes (at most 256 ``stat`` calls), and a stamp mismatch
        #: triggers a rescan — so a record put by another process is visible
        #: to ``query()`` without any manual refresh.
        self._key_index: set[str] | None = None
        self._index_stamp: tuple | None = None
        self._index_lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"RunStore(root={str(self.root)!r}, compress={self.compress})"

    # -- addressing -----------------------------------------------------
    def key_for(self, spec: ScenarioSpec) -> str:
        """The content address of ``spec`` (see :func:`repro.store.keys.spec_key`)."""
        return spec_key(spec)

    def path_for(self, key: str) -> Path:
        """The record file backing ``key`` (sharded by the first two digits)."""
        return self.root / key[:2] / f"{key}.json"

    def contains(self, spec: ScenarioSpec) -> bool:
        """True when a record for ``spec`` exists under this root."""
        return self.path_for(self.key_for(spec)).exists()

    # -- writing --------------------------------------------------------
    def put(
        self,
        spec: ScenarioSpec,
        result: RunResult,
        *,
        overwrite: bool = True,
        checkpoint: bytes | None = None,
    ) -> StoredRun:
        """Persist ``result`` under ``spec``'s content key and return the entry.

        With ``overwrite=False`` an existing record is left untouched (the
        stored entry is returned instead) — identical inputs produce
        identical histories, so rewriting is never required for correctness.

        ``checkpoint`` attaches a trainer resumable-state blob to the record
        (stored as a ``uint8`` array in the ``.npz`` sidecar, which the
        existing orphan-sidecar ``gc`` already covers); partial-rung records
        use this so a later, higher-fidelity run continues from round ``r``
        instead of replaying it.
        """
        key = self.key_for(spec)
        path = self.path_for(key)
        if path.exists() and not overwrite:
            return self.load(key)
        fingerprint = capability_fingerprint(spec.system)
        history = result.history
        total_members = sum(
            len(r.participants) + len(r.discarded) + len(r.attackers)
            for r in history.rounds
        )
        use_sidecar = (
            self.compress
            or total_members >= self.OFFLOAD_TOTAL_THRESHOLD
            or checkpoint is not None
        )
        offload: dict | None = {} if use_sidecar else None
        payload = run_record_payload(
            spec, result, key=key, fingerprint=fingerprint, offload=offload
        )
        arrays_path = path.with_suffix(".npz")
        if use_sidecar:
            extra_arrays = dict(offload or {})
            if checkpoint is not None:
                extra_arrays["checkpoint"] = np.frombuffer(checkpoint, dtype=np.uint8)
                payload["checkpoint"] = {
                    "rounds": len(history),
                    "bytes": len(checkpoint),
                }
            # Written atomically and *before* the JSON record, so a record
            # never advertises arrays that do not exist; a kill in between
            # leaves an orphan .npz that gc() reclaims.
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = arrays_path.with_name(arrays_path.name + ".tmp")
            with open(tmp, "wb") as handle:
                np.savez_compressed(
                    handle,
                    delays=history.delays,
                    accuracies=history.accuracies,
                    elapsed_times=history.elapsed_times,
                    train_losses=np.array(
                        [r.train_loss for r in history.rounds], dtype=np.float64
                    ),
                    **extra_arrays,
                )
            os.replace(tmp, arrays_path)
            payload["arrays"] = arrays_path.name
        else:
            arrays_path.unlink(missing_ok=True)  # drop a stale sidecar on rewrite
        write_json_record(path, payload, kind="run")
        with self._index_lock:
            if self._key_index is not None:
                # The write also changed the shard's mtime, so the next
                # _index() call re-validates; adding eagerly just keeps
                # same-process readers coherent without waiting for it.
                self._key_index.add(key)
        return StoredRun(
            key=key,
            spec=spec,
            result=result,
            fingerprint=fingerprint,
            path=path,
            created_at=str(payload["created_at"]),
            summary_record=dict(payload["summary"]),
            checkpoint=checkpoint,
        )

    # -- reading --------------------------------------------------------
    def get(self, spec: ScenarioSpec) -> RunResult | None:
        """The cached :class:`RunResult` for ``spec``, or None on a miss.

        Unreadable, schema-mismatched, or tampered records count as misses
        (the caller recomputes and overwrites); the returned history is
        relabelled with ``spec.name``, since the presentation-only name is
        deliberately outside the content key.
        """
        key = self.key_for(spec)
        try:
            stored = self.load(key)
        except RunStoreError:
            return None
        stored.result.history.label = spec.name
        return stored.result

    def get_checkpoint(self, spec: ScenarioSpec) -> bytes | None:
        """The resumable-state blob stored with ``spec``'s record, if any.

        ``None`` on a store miss *or* when the record was written without a
        checkpoint (e.g. by a plain sweep) — resume paths fall back to
        computing from scratch in both cases.
        """
        key = self.key_for(spec)
        try:
            stored = self.load(key)
        except RunStoreError:
            return None
        return stored.checkpoint

    def load(self, key: str) -> StoredRun:
        """Load the record stored under ``key`` (raising :class:`RunStoreError`)."""
        path = self.path_for(key)
        if not path.exists():
            raise RunStoreError(f"no stored run with key {key!r} under {self.root}")
        return self._read(path)

    def _read(self, path: Path) -> StoredRun:
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise RunStoreError(f"unreadable run record {path}: {exc}") from exc
        if record.get("schema_version") != STORE_SCHEMA_VERSION:
            raise RunStoreError(
                f"run record {path} has schema_version "
                f"{record.get('schema_version')!r}, expected {STORE_SCHEMA_VERSION}"
            )
        try:
            spec = ScenarioSpec.from_mapping(record["spec"])
        except (KeyError, ScenarioError, SystemRegistryError) as exc:
            raise RunStoreError(f"run record {path} has an unloadable spec: {exc}") from exc
        arrays: dict[str, np.ndarray] | None = None
        if record.get("arrays"):
            arrays_path = path.with_suffix(".npz")
            try:
                with np.load(arrays_path) as data:
                    arrays = {name: data[name] for name in data.files}
            except (OSError, ValueError) as exc:
                raise RunStoreError(
                    f"run record {path} references sidecar {arrays_path.name} "
                    f"but it cannot be loaded: {exc}"
                ) from exc
        try:
            history = history_from_payload(record["history"], arrays=arrays)
        except (KeyError, TypeError, ValueError) as exc:
            raise RunStoreError(f"run record {path} has an unloadable history: {exc}") from exc
        result = RunResult(
            system=str(record.get("system", spec.system)),
            history=history,
            extras=dict(record.get("extras", {})),
        )
        checkpoint: bytes | None = None
        if record.get("checkpoint") and arrays is not None and "checkpoint" in arrays:
            checkpoint = bytes(np.asarray(arrays["checkpoint"], dtype=np.uint8).tobytes())
        return StoredRun(
            key=str(record.get("key", path.stem)),
            spec=spec,
            result=result,
            fingerprint=str(record.get("system_fingerprint", "")),
            path=path,
            created_at=str(record.get("created_at", "")),
            summary_record=dict(record.get("summary") or {}),
            checkpoint=checkpoint,
        )

    # -- querying -------------------------------------------------------
    def _shard_stamp(self) -> tuple:
        """A cheap fingerprint of the on-disk shard state (names + mtimes).

        A new record — written by this process or any other — either creates
        a shard directory (changing the name set) or updates an existing
        one's mtime, so comparing stamps detects external writes without
        enumerating every record file.
        """
        try:
            with os.scandir(self.root) as entries:
                return tuple(
                    sorted(
                        (entry.name, entry.stat().st_mtime_ns)
                        for entry in entries
                        if entry.is_dir() and len(entry.name) == 2
                    )
                )
        except FileNotFoundError:
            return ()

    def _index(self) -> set[str]:
        """The in-memory key index, re-validated against the on-disk shards.

        On every call the shard stamp is recomputed; a mismatch (first use,
        an external writer, or this store's own :meth:`put`) rescans the
        shard directories, so concurrent ``put`` from other processes —
        ``repro serve`` worker processes share one store root — cannot leave
        ``query()``/``keys()`` serving a stale index.
        """
        with self._index_lock:
            stamp = self._shard_stamp()
            if self._key_index is None or stamp != self._index_stamp:
                self._key_index = {p.stem for p in self.root.glob("??/*.json")}
                self._index_stamp = stamp
            return set(self._key_index)

    def refresh_index(self) -> None:
        """Drop the in-memory key index (next ``keys()`` rescans the shards).

        Kept for compatibility; external writes are already detected by the
        shard-stamp re-validation in :meth:`_index`, so calling this is only
        needed to force a rescan when a writer bypassed the shard layout.
        """
        with self._index_lock:
            self._key_index = None
            self._index_stamp = None

    def keys(self) -> tuple[str, ...]:
        """Every record key under the root, sorted (served from the index)."""
        return tuple(sorted(self._index()))

    def runs(self) -> list[StoredRun]:
        """Every *loadable* record, sorted by (system, scenario name, key).

        Records that fail to load (stale schema, unknown system) are skipped
        here; :meth:`gc` is the API that reclaims them.
        """
        out: list[StoredRun] = []
        for key in self.keys():
            try:
                out.append(self.load(key))
            except RunStoreError:
                continue
        out.sort(key=lambda r: (r.result.system, r.spec.name, r.key))
        return out

    def query(self, *, system: str | None = None, predicate=None, **field_equals) -> list[StoredRun]:
        """Stored runs matching the filters.

        ``system`` matches the producing system's name, ``field_equals``
        compares :class:`ScenarioSpec` fields for equality (e.g.
        ``seed=0, num_clients=20``), and ``predicate`` is an arbitrary
        ``StoredRun -> bool`` refinement applied last.
        """
        unknown = [f for f in field_equals if f not in ScenarioSpec.field_names()]
        if unknown:
            raise RunStoreError(
                "unknown scenario field(s) in query: " + ", ".join(sorted(unknown))
            )
        out = []
        for run in self.runs():
            if system is not None and run.result.system != system:
                continue
            if any(getattr(run.spec, f) != v for f, v in field_equals.items()):
                continue
            if predicate is not None and not predicate(run):
                continue
            out.append(run)
        return out

    # -- maintenance ----------------------------------------------------
    def gc(self, *, predicate=None, dry_run: bool = False) -> tuple[str, ...]:
        """Collect stale records; returns the removed (or removable) keys.

        A record is stale when it cannot be loaded (old schema, corrupt
        JSON, a system no longer registered) or when its stored key no
        longer matches the key its own spec hashes to today — the signature
        of a code-relevant change (new spec field, bumped key schema,
        swapped system registration).  ``predicate`` (``StoredRun -> bool``)
        additionally selects *valid* records to drop, e.g. everything from
        one system.  With ``dry_run=True`` nothing is deleted.
        """
        removed: list[str] = []
        for path in sorted(self.root.glob("??/*.json")):
            try:
                stored = self._read(path)
            except RunStoreError:
                removed.append(path.stem)
                if not dry_run:
                    self._remove(path)
                continue
            try:
                current_key = self.key_for(stored.spec)
            except (ScenarioError, SystemRegistryError):
                current_key = None
            stale = current_key != stored.key or path.stem != stored.key
            if stale or (predicate is not None and predicate(stored)):
                removed.append(path.stem)
                if not dry_run:
                    self._remove(path)
        # Orphaned array sidecars (a kill between the .npz and JSON writes,
        # or leftovers of externally deleted records) have no paired record.
        for arrays_path in sorted(self.root.glob("??/*.npz")):
            if not arrays_path.with_suffix(".json").exists():
                removed.append(arrays_path.stem)
                if not dry_run:
                    arrays_path.unlink(missing_ok=True)
        if removed and not dry_run:
            self.refresh_index()  # invalidate; next keys() rescans
        return tuple(removed)

    @staticmethod
    def _remove(path: Path) -> None:
        path.unlink(missing_ok=True)
        path.with_suffix(".npz").unlink(missing_ok=True)
