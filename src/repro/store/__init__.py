"""Content-addressed persistence for experiment runs.

The package splits into:

* :mod:`repro.store.keys` — :func:`spec_key`, the stable content address of
  a scenario (canonical spec + seed + system capability fingerprint);
* :mod:`repro.store.records` — the one versioned JSON serialiser shared by
  the run store and the benchmark harness's ``BENCH_*.json`` writer;
* :mod:`repro.store.runstore` — :class:`RunStore`, the on-disk store under
  ``results/store/`` with put/get/query/gc;
* :mod:`repro.store.report` — the ``repro report`` tables (text, Markdown,
  CSV) over stored runs.

``ExperimentEngine(store=RunStore(...))`` threads the store through every
run, ``repro.api`` exposes it as the opt-in ``cache="store"``, and the CLI
adds ``sweep --resume/--no-cache`` plus the ``report`` subcommand.  See
``docs/results.md`` for layout, key semantics, and a walkthrough.
"""

from repro.store.keys import KEY_SCHEMA_VERSION, canonical_json, spec_key
from repro.store.records import (
    STORE_SCHEMA_VERSION,
    history_from_payload,
    history_to_payload,
    json_sanitize,
    run_record_payload,
    write_json_record,
)
from repro.store.report import REPORT_COLUMNS, report_table, save_markdown, to_markdown
from repro.store.runstore import DEFAULT_STORE_ROOT, RunStore, RunStoreError, StoredRun

__all__ = [
    "DEFAULT_STORE_ROOT",
    "KEY_SCHEMA_VERSION",
    "REPORT_COLUMNS",
    "RunStore",
    "RunStoreError",
    "STORE_SCHEMA_VERSION",
    "StoredRun",
    "canonical_json",
    "history_from_payload",
    "history_to_payload",
    "json_sanitize",
    "report_table",
    "run_record_payload",
    "save_markdown",
    "spec_key",
    "to_markdown",
    "write_json_record",
]
