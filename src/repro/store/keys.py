"""Content addressing for experiment runs.

A run's identity is the answer to "would re-executing this scenario produce
the same history?".  :func:`spec_key` hashes exactly the inputs that decide
that answer:

* the **canonical scenario mapping** — every :class:`~repro.runner.scenario.ScenarioSpec`
  field (seed included) in coerced, order-independent form
  (:meth:`~repro.runner.scenario.ScenarioSpec.canonical_mapping`), minus the
  fields that provably never change the numbers: the presentation-only
  ``name``, and the execution-only ``backend``/``max_workers`` (the
  executor backends produce bit-identical histories — the repository's
  pinned determinism invariant — so a sweep run with ``--backend process``
  resumes cleanly under ``--backend serial`` and vice versa);
* the **capability fingerprint** of the registered system the spec names
  (:func:`repro.systems.registry.capability_fingerprint`) — so replacing a
  system registration (a plugin swap, a capability change) invalidates every
  run cached under the old registration;
* a **key schema version**, bumped whenever the hashed layout itself changes.

Two processes that build the same spec — from a file, a mapping in any key
order, or keyword arguments — therefore derive the same 64-hex-digit key,
and any field change produces a different one.  ``docs/results.md`` spells
out the invalidation rules.
"""

from __future__ import annotations

import hashlib
import json

from repro.runner.scenario import ScenarioSpec
from repro.systems.registry import capability_fingerprint

__all__ = ["KEY_SCHEMA_VERSION", "NON_SEMANTIC_FIELDS", "canonical_json", "spec_key"]

#: Version of the hashed payload layout.  Bumping it invalidates every
#: existing store entry at once (``RunStore.gc`` collects them as stale).
KEY_SCHEMA_VERSION = 1

#: Spec fields excluded from the hash: they label or schedule a run without
#: affecting its history (executor backends are bit-identical by the
#: repository's determinism invariant, pinned in bench_runner_scaling).
NON_SEMANTIC_FIELDS = ("name", "backend", "max_workers")


def canonical_json(payload: object) -> str:
    """Serialise ``payload`` to the one canonical JSON form used for hashing.

    Keys are sorted recursively and separators are fixed, so two mappings
    with the same contents serialise identically regardless of insertion
    order; NaN/Infinity are rejected because they would not round-trip.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True, allow_nan=False
    )


def spec_key(spec: ScenarioSpec, *, fingerprint: str | None = None) -> str:
    """The content address of ``spec``: a stable SHA-256 hex digest.

    ``fingerprint`` defaults to the capability fingerprint of the registered
    system the spec names; pass it explicitly to compute keys for a system
    that is not currently registered (e.g. when auditing a store offline).
    """
    if fingerprint is None:
        fingerprint = capability_fingerprint(spec.system)
    mapping = spec.canonical_mapping()
    for field_name in NON_SEMANTIC_FIELDS:
        mapping.pop(field_name, None)
    payload = {
        "key_schema": KEY_SCHEMA_VERSION,
        "spec": mapping,
        "system_fingerprint": fingerprint,
    }
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
