"""Reporting over stored runs: the paper-style tables without re-running.

``repro report`` (and :func:`repro.api.report`) tabulate a
:class:`~repro.store.runstore.RunStore` into the same summary columns the
figure benchmarks print — scenario, system, rounds, average delay, average
and final accuracy — plus the short content key that ties each row back to
its record file.  The table renders as aligned text (the CLI default), as a
GitHub-flavoured Markdown table (:func:`to_markdown`), or as CSV through the
existing :func:`repro.core.io.save_comparison_csv`, replacing the ad-hoc
reading of ``benchmarks/results`` text files.  ``docs/results.md`` walks
through the sweep → store → report pipeline end to end.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.core.results import ComparisonResult
from repro.store.runstore import RunStore, StoredRun

__all__ = ["REPORT_COLUMNS", "report_table", "to_markdown", "save_markdown"]

#: Columns of the stored-run summary table, in order.
REPORT_COLUMNS = (
    "scenario",
    "system",
    "rounds",
    "avg_delay_s",
    "avg_accuracy",
    "final_accuracy",
    "key",
)


def report_table(
    runs: "RunStore | Iterable[StoredRun]",
    *,
    systems: Sequence[str] | None = None,
    title: str | None = None,
) -> ComparisonResult:
    """Summarise stored runs as a :class:`ComparisonResult`.

    ``runs`` is a :class:`RunStore` (all loadable records) or an iterable of
    :class:`StoredRun`; ``systems`` optionally restricts to those system
    names.  Rows are sorted by (system, scenario name) and each carries the
    first 12 hex digits of its content key, enough to locate the record file
    under the store root.
    """
    entries = list(runs.runs()) if isinstance(runs, RunStore) else list(runs)
    if systems is not None:
        wanted = set(systems)
        entries = [run for run in entries if run.result.system in wanted]
    if title is None:
        title = f"Stored runs ({len(entries)} record{'s' if len(entries) != 1 else ''})"
    table = ComparisonResult(title=title, columns=list(REPORT_COLUMNS))
    for run in entries:
        summary = run.summary
        table.add_row(
            run.spec.name,
            run.result.system,
            summary["rounds"],
            summary["average_delay"],
            summary["average_accuracy"],
            summary["final_accuracy"],
            run.key[:12],
        )
    return table


def to_markdown(table: ComparisonResult) -> str:
    """Render a :class:`ComparisonResult` as a GitHub-flavoured Markdown table.

    Pipes inside cell values are escaped — bench-style scenario names such
    as ``matrix[sign_flip|krum]`` must not split their cell.
    """

    def fmt(value: object) -> str:
        if isinstance(value, (float, np.floating)):
            return f"{float(value):.4f}"
        return str(value).replace("|", "\\|")

    lines = [f"# {table.title}", ""]
    lines.append("| " + " | ".join(table.columns) + " |")
    lines.append("| " + " | ".join("---" for _ in table.columns) + " |")
    for row in table.rows:
        lines.append("| " + " | ".join(fmt(v) for v in row) + " |")
    if table.notes:
        lines.append("")
        lines.extend(f"- {note}" for note in table.notes)
    return "\n".join(lines) + "\n"


def save_markdown(table: ComparisonResult, path: str | Path) -> Path:
    """Write the Markdown rendering of ``table`` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(to_markdown(table), encoding="utf-8")
    return path
