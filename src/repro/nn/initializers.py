"""Weight initialisation schemes.

Each initialiser takes the target ``shape`` and a ``numpy.random.Generator``
and returns a freshly allocated ``float64`` array.  Passing the generator
explicitly keeps client-model initialisation reproducible and, importantly for
FL, lets every client start from the *same* global parameters when required
(the FAIR-BFL orchestrator initialises one global model and broadcasts it via
the genesis block).
"""

from __future__ import annotations

import numpy as np

__all__ = ["zeros_init", "normal_init", "xavier_init", "he_init"]


def zeros_init(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    """All-zeros initialisation (used for biases)."""
    return np.zeros(shape, dtype=np.float64)


def normal_init(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    *,
    std: float = 0.01,
) -> np.ndarray:
    """Gaussian initialisation with standard deviation ``std``."""
    if std < 0:
        raise ValueError(f"std must be non-negative, got {std}")
    return rng.normal(0.0, std, size=shape).astype(np.float64)


def xavier_init(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Xavier/Glorot uniform initialisation for (fan_in, fan_out) weight matrices."""
    if len(shape) != 2:
        raise ValueError(f"xavier_init expects a 2-D weight shape, got {shape}")
    fan_in, fan_out = shape
    limit = float(np.sqrt(6.0 / (fan_in + fan_out)))
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def he_init(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming normal initialisation, appropriate before ReLU layers."""
    if len(shape) != 2:
        raise ValueError(f"he_init expects a 2-D weight shape, got {shape}")
    fan_in = shape[0]
    std = float(np.sqrt(2.0 / fan_in))
    return rng.normal(0.0, std, size=shape).astype(np.float64)
