"""Layers: Linear, activations, Dropout, Flatten, Softmax.

Every layer implements the ``forward``/``backward`` contract of
:class:`repro.nn.module.Module`.  Caches required for the backward pass are
stored on the layer between the two calls (single-threaded per client, which
matches the sequential per-client training loop of Algorithm 1).
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import he_init, xavier_init, zeros_init
from repro.nn.module import Module, Parameter

__all__ = ["Linear", "ReLU", "Tanh", "Sigmoid", "Softmax", "Dropout", "Flatten"]


class Linear(Module):
    """Fully-connected layer ``y = x @ W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output dimensionality.
    rng:
        Generator used for weight initialisation.
    init:
        ``"xavier"`` (default, good before tanh/softmax) or ``"he"`` (before
        ReLU).
    bias:
        Whether to include the additive bias term.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        *,
        init: str = "xavier",
        bias: bool = True,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"in_features and out_features must be positive, got "
                f"({in_features}, {out_features})"
            )
        if init == "xavier":
            w = xavier_init((in_features, out_features), rng)
        elif init == "he":
            w = he_init((in_features, out_features), rng)
        else:
            raise ValueError(f"unknown init scheme {init!r}; expected 'xavier' or 'he'")
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.weight = self.register_parameter("weight", Parameter(w, "weight"))
        self.bias: Parameter | None = None
        if bias:
            self.bias = self.register_parameter(
                "bias", Parameter(zeros_init((out_features,)), "bias")
            )
        self._input_cache: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Linear expected input of shape (batch, {self.in_features}), got {x.shape}"
            )
        self._input_cache = x
        out = x @ self.weight.value
        if self.bias is not None:
            out = out + self.bias.value
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_cache is None:
            raise RuntimeError("backward called before forward on Linear layer")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        x = self._input_cache
        self.weight.grad += x.T @ grad_output
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.value.T


class ReLU(Module):
    """Rectified linear unit ``max(x, 0)``."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward on ReLU layer")
        return np.where(self._mask, np.asarray(grad_output, dtype=np.float64), 0.0)


class Tanh(Module):
    """Hyperbolic-tangent activation."""

    def __init__(self) -> None:
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = np.tanh(np.asarray(x, dtype=np.float64))
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward on Tanh layer")
        return np.asarray(grad_output, dtype=np.float64) * (1.0 - self._output**2)


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def __init__(self) -> None:
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        # Numerically stable piecewise formulation.
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        exp_x = np.exp(x[~pos])
        out[~pos] = exp_x / (1.0 + exp_x)
        self._output = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward on Sigmoid layer")
        s = self._output
        return np.asarray(grad_output, dtype=np.float64) * s * (1.0 - s)


class Softmax(Module):
    """Row-wise softmax.

    Normally the fused :class:`repro.nn.losses.SoftmaxCrossEntropyLoss` is
    preferred during training; this standalone layer exists for inference-time
    probability outputs and for models that need explicit probabilities.
    """

    def __init__(self) -> None:
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        shifted = x - x.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        self._output = exp / exp.sum(axis=1, keepdims=True)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward on Softmax layer")
        s = self._output
        grad_output = np.asarray(grad_output, dtype=np.float64)
        # Jacobian-vector product per row: s * (g - sum(g * s)).
        dot = np.sum(grad_output * s, axis=1, keepdims=True)
        return s * (grad_output - dot)


class Dropout(Module):
    """Inverted dropout; identity in evaluation mode."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not (0.0 <= rate < 1.0):
            raise ValueError(f"dropout rate must lie in [0, 1), got {rate}")
        self.rate = float(rate)
        self._rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_output = np.asarray(grad_output, dtype=np.float64)
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


class Flatten(Module):
    """Flatten all non-batch dimensions into one."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward on Flatten layer")
        return np.asarray(grad_output, dtype=np.float64).reshape(self._input_shape)
