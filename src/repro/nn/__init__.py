"""From-scratch NumPy neural-network substrate.

The paper trains small MNIST models with mini-batch SGD on every federated
client (Algorithm 1, Procedure I).  This package provides the minimal deep
learning framework needed for that: composable modules with explicit
forward/backward passes, softmax cross-entropy and MSE losses, an SGD
optimizer with momentum and learning-rate schedules, and flat parameter-vector
access used by the incentive mechanism and the blockchain.

Design notes
------------
* All math is vectorised NumPy on ``float64`` (batch dimension first).
* Modules own their parameters as :class:`repro.nn.module.Parameter` objects
  holding both the value and the accumulated gradient; ``zero_grad`` resets
  the gradients in place (no reallocation in the training loop).
* ``get_flat_parameters`` / ``set_flat_parameters`` give the single-vector
  view of a model used throughout FAIR-BFL (clients upload it, Algorithm 2
  clusters it, Equation (1) averages it).
"""

from repro.nn.initializers import he_init, normal_init, xavier_init, zeros_init
from repro.nn.layers import Dropout, Flatten, Linear, ReLU, Sigmoid, Softmax, Tanh
from repro.nn.losses import Loss, MSELoss, SoftmaxCrossEntropyLoss
from repro.nn.metrics import accuracy, confusion_matrix, top_k_accuracy
from repro.nn.models import build_model, LogisticRegressionModel, MLPClassifier
from repro.nn.module import Module, Parameter, Sequential
from repro.nn.optim import SGD, ConstantLR, InverseTimeDecayLR, LRSchedule, StepDecayLR
from repro.nn.parameters import (
    get_flat_gradients,
    get_flat_parameters,
    parameter_shapes,
    set_flat_parameters,
)

__all__ = [
    "he_init",
    "normal_init",
    "xavier_init",
    "zeros_init",
    "Dropout",
    "Flatten",
    "Linear",
    "ReLU",
    "Sigmoid",
    "Softmax",
    "Tanh",
    "Loss",
    "MSELoss",
    "SoftmaxCrossEntropyLoss",
    "accuracy",
    "confusion_matrix",
    "top_k_accuracy",
    "build_model",
    "LogisticRegressionModel",
    "MLPClassifier",
    "Module",
    "Parameter",
    "Sequential",
    "SGD",
    "ConstantLR",
    "InverseTimeDecayLR",
    "LRSchedule",
    "StepDecayLR",
    "get_flat_gradients",
    "get_flat_parameters",
    "parameter_shapes",
    "set_flat_parameters",
]
