"""Module system: parameters, base module, and sequential containers.

The design mirrors the familiar ``torch.nn.Module`` contract at the small
scale this reproduction needs:

* a :class:`Parameter` couples a value array with its gradient accumulator;
* a :class:`Module` exposes ``forward``/``backward``, enumerates its
  parameters (recursively through registered sub-modules), and supports
  train/eval modes (used by :class:`repro.nn.layers.Dropout`);
* a :class:`Sequential` chains modules and propagates gradients in reverse.

``backward`` takes the gradient of the loss with respect to the module output
and returns the gradient with respect to the module input, accumulating
parameter gradients as a side effect — exactly what the per-client SGD loop in
Algorithm 1 needs.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

__all__ = ["Parameter", "Module", "Sequential"]


class Parameter:
    """A trainable tensor together with its gradient accumulator."""

    __slots__ = ("name", "value", "grad")

    def __init__(self, value: np.ndarray, name: str = "param") -> None:
        self.name = str(name)
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self.value.shape)

    @property
    def size(self) -> int:
        return int(self.value.size)

    def zero_grad(self) -> None:
        """Reset the gradient accumulator in place."""
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.shape})"


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        self._parameters: dict[str, Parameter] = {}
        self._modules: dict[str, "Module"] = {}
        self.training: bool = True

    # -- registration -----------------------------------------------------
    def register_parameter(self, name: str, param: Parameter) -> Parameter:
        """Register ``param`` under ``name`` and return it."""
        if not isinstance(param, Parameter):
            raise TypeError(f"expected Parameter, got {type(param).__name__}")
        self._parameters[name] = param
        return param

    def register_module(self, name: str, module: "Module") -> "Module":
        """Register a child module under ``name`` and return it."""
        if not isinstance(module, Module):
            raise TypeError(f"expected Module, got {type(module).__name__}")
        self._modules[name] = module
        return module

    # -- traversal --------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters of this module and its children, depth-first."""
        yield from self._parameters.values()
        for child in self._modules.values():
            yield from child.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs, depth-first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    # -- gradient / mode management ----------------------------------------
    def zero_grad(self) -> None:
        """Reset every parameter gradient of this module tree."""
        for p in self.parameters():
            p.zero_grad()

    def train(self) -> "Module":
        """Switch this module tree to training mode."""
        for m in self.modules():
            m.training = True
        return self

    def eval(self) -> "Module":
        """Switch this module tree to evaluation mode."""
        for m in self.modules():
            m.training = False
        return self

    # -- computation --------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the module output for a batch ``x`` (batch-first)."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate ``grad_output`` and return the gradient w.r.t. the input."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Sequential(Module):
    """Chain of modules applied in order.

    The forward pass caches nothing on the container itself; each layer caches
    whatever it needs to compute its own backward pass, which keeps memory use
    proportional to the layer count and batch size.
    """

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers: list[Module] = []
        for i, layer in enumerate(layers):
            self.layers.append(self.register_module(f"layer{i}", layer))

    def append(self, layer: Module) -> "Sequential":
        """Append one more layer to the chain."""
        self.layers.append(self.register_module(f"layer{len(self.layers)}", layer))
        return self

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.asarray(x, dtype=np.float64)
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = np.asarray(grad_output, dtype=np.float64)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]
