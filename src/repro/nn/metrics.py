"""Classification metrics.

The paper reports "average accuracy" across clients per communication round
(Section 5.1); these helpers compute the per-evaluation accuracy that feeds
into that average (the averaging itself lives in
:class:`repro.core.results.RoundRecord`).
"""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "top_k_accuracy", "confusion_matrix"]


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of rows whose arg-max prediction matches the integer label."""
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels).astype(np.int64)
    if logits.ndim != 2:
        raise ValueError(f"expected logits of shape (batch, classes), got {logits.shape}")
    if labels.shape != (logits.shape[0],):
        raise ValueError(
            f"expected labels of shape ({logits.shape[0]},), got {labels.shape}"
        )
    if logits.shape[0] == 0:
        return 0.0
    preds = np.argmax(logits, axis=1)
    return float(np.mean(preds == labels))


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 3) -> float:
    """Fraction of rows whose label appears among the ``k`` largest logits."""
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels).astype(np.int64)
    if logits.ndim != 2:
        raise ValueError(f"expected logits of shape (batch, classes), got {logits.shape}")
    if not (1 <= k <= logits.shape[1]):
        raise ValueError(f"k must lie in [1, {logits.shape[1]}], got {k}")
    if logits.shape[0] == 0:
        return 0.0
    topk = np.argpartition(-logits, kth=k - 1, axis=1)[:, :k]
    hits = (topk == labels[:, None]).any(axis=1)
    return float(np.mean(hits))


def confusion_matrix(logits: np.ndarray, labels: np.ndarray, num_classes: int) -> np.ndarray:
    """``num_classes x num_classes`` matrix with true labels on rows, predictions on columns."""
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels).astype(np.int64)
    if num_classes <= 0:
        raise ValueError(f"num_classes must be positive, got {num_classes}")
    preds = np.argmax(logits, axis=1) if logits.size else np.zeros(0, dtype=np.int64)
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, preds), 1)
    return matrix
