"""Optimizers and learning-rate schedules.

The paper uses plain mini-batch SGD with learning rate η (default 0.01,
swept over [0.01, 0.20] in Figure 5).  The convergence proof (Theorem 3.1)
relies on a decaying step size η_r = 2 / (μ(γ + r)); the
:class:`InverseTimeDecayLR` schedule implements exactly that family so the
theoretical benchmark can exercise the same schedule.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["LRSchedule", "ConstantLR", "StepDecayLR", "InverseTimeDecayLR", "SGD"]


class LRSchedule:
    """Base class mapping a step index to a learning rate."""

    def learning_rate(self, step: int) -> float:
        raise NotImplementedError

    def __call__(self, step: int) -> float:
        return self.learning_rate(step)


class ConstantLR(LRSchedule):
    """Constant learning rate (the paper's default setting)."""

    def __init__(self, lr: float) -> None:
        self.lr = check_positive("lr", lr)

    def learning_rate(self, step: int) -> float:
        return self.lr


class StepDecayLR(LRSchedule):
    """Multiply the learning rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, lr: float, step_size: int, gamma: float = 0.5) -> None:
        self.lr = check_positive("lr", lr)
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.step_size = int(step_size)
        self.gamma = check_positive("gamma", gamma)

    def learning_rate(self, step: int) -> float:
        return self.lr * (self.gamma ** (step // self.step_size))


class InverseTimeDecayLR(LRSchedule):
    """η_r = beta / (gamma + r) — the decaying schedule of Theorem 3.1.

    With ``beta = 2/μ`` and ``gamma = max(8L/μ, E)`` this is exactly the
    schedule assumed by the convergence proof of the paper (Appendix A).
    """

    def __init__(self, beta: float, gamma: float) -> None:
        self.beta = check_positive("beta", beta)
        self.gamma = check_non_negative("gamma", gamma)

    def learning_rate(self, step: int) -> float:
        if step < 0:
            raise ValueError(f"step must be non-negative, got {step}")
        return self.beta / (self.gamma + step)


class SGD:
    """Mini-batch stochastic gradient descent with optional momentum and weight decay.

    Parameters
    ----------
    parameters:
        The parameters to update (typically ``model.parameters()``).
    lr:
        Either a float (constant rate) or an :class:`LRSchedule`.
    momentum:
        Classical momentum coefficient in ``[0, 1)``; 0 disables momentum
        (the paper's configuration).
    weight_decay:
        L2 penalty coefficient added to the gradient before the update.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float | LRSchedule = 0.01,
        *,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        self.parameters: list[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("SGD requires at least one parameter to optimise")
        self.schedule: LRSchedule = lr if isinstance(lr, LRSchedule) else ConstantLR(float(lr))
        if not (0.0 <= momentum < 1.0):
            raise ValueError(f"momentum must lie in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self.weight_decay = check_non_negative("weight_decay", weight_decay)
        self.step_count = 0
        self._velocity: list[np.ndarray] | None = None
        if self.momentum > 0.0:
            self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    @property
    def current_lr(self) -> float:
        """The learning rate that the *next* ``step`` call will use."""
        return self.schedule.learning_rate(self.step_count)

    def zero_grad(self) -> None:
        """Reset all parameter gradients."""
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> float:
        """Apply one update using the accumulated gradients; returns the lr used."""
        lr = self.schedule.learning_rate(self.step_count)
        for i, p in enumerate(self.parameters):
            grad = p.grad
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * p.value
            if self._velocity is not None:
                self._velocity[i] = self.momentum * self._velocity[i] - lr * grad
                p.value += self._velocity[i]
            else:
                p.value -= lr * grad
        self.step_count += 1
        return lr
