"""Reference model architectures for the MNIST-style task.

The paper does not spell out the exact MNIST model architecture; like most of
the BFL literature it uses a small fully-connected classifier.  We provide two
standard choices plus a factory so experiments can swap the architecture
without touching the orchestrator:

* :class:`LogisticRegressionModel` — single linear layer (convex objective,
  matches the strongly-convex assumptions of Theorem 3.1 when regularised);
* :class:`MLPClassifier` — one or more hidden ReLU layers (the default for the
  accuracy figures).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.layers import Flatten, Linear, ReLU
from repro.nn.module import Module, Sequential
from repro.utils.rng import new_rng

__all__ = ["LogisticRegressionModel", "MLPClassifier", "build_model", "ModelFactory"]


class LogisticRegressionModel(Sequential):
    """Multinomial logistic regression: ``Flatten -> Linear``."""

    def __init__(self, input_dim: int, num_classes: int, rng: np.random.Generator) -> None:
        if input_dim <= 0 or num_classes <= 1:
            raise ValueError(
                f"input_dim must be positive and num_classes > 1, got "
                f"({input_dim}, {num_classes})"
            )
        super().__init__(Flatten(), Linear(input_dim, num_classes, rng, init="xavier"))
        self.input_dim = int(input_dim)
        self.num_classes = int(num_classes)


class MLPClassifier(Sequential):
    """Multi-layer perceptron with ReLU hidden layers."""

    def __init__(
        self,
        input_dim: int,
        num_classes: int,
        rng: np.random.Generator,
        *,
        hidden_sizes: tuple[int, ...] = (64,),
    ) -> None:
        if input_dim <= 0 or num_classes <= 1:
            raise ValueError(
                f"input_dim must be positive and num_classes > 1, got "
                f"({input_dim}, {num_classes})"
            )
        if any(h <= 0 for h in hidden_sizes):
            raise ValueError(f"hidden sizes must all be positive, got {hidden_sizes}")
        layers: list[Module] = [Flatten()]
        prev = int(input_dim)
        for h in hidden_sizes:
            layers.append(Linear(prev, int(h), rng, init="he"))
            layers.append(ReLU())
            prev = int(h)
        layers.append(Linear(prev, int(num_classes), rng, init="xavier"))
        super().__init__(*layers)
        self.input_dim = int(input_dim)
        self.num_classes = int(num_classes)
        self.hidden_sizes = tuple(int(h) for h in hidden_sizes)


def build_model(
    name: str,
    input_dim: int,
    num_classes: int,
    rng: np.random.Generator,
    *,
    hidden_sizes: tuple[int, ...] = (64,),
) -> Module:
    """Factory resolving a model architecture by name.

    Parameters
    ----------
    name:
        ``"logreg"`` or ``"mlp"``.
    input_dim, num_classes:
        Task dimensions.
    rng:
        Generator used to initialise weights.
    hidden_sizes:
        Hidden layer widths (MLP only).
    """
    key = name.strip().lower()
    if key in {"logreg", "logistic", "logistic_regression"}:
        return LogisticRegressionModel(input_dim, num_classes, rng)
    if key in {"mlp", "mlp_classifier"}:
        return MLPClassifier(input_dim, num_classes, rng, hidden_sizes=hidden_sizes)
    raise ValueError(f"unknown model name {name!r}; expected 'logreg' or 'mlp'")


@dataclass(frozen=True)
class ModelFactory:
    """Picklable zero-argument model builder.

    The trainers hand every :class:`~repro.fl.client.FLClient` a factory for
    its scratch model.  A plain ``lambda`` cannot cross a process boundary, so
    the parallel executor's process backend requires this value-typed factory:
    it derives the (deterministic) init RNG from ``(seed, label,
    "model-init")`` on every call, exactly as the trainers' former lambdas did.

    Attributes
    ----------
    model_name, input_dim, num_classes, hidden_sizes:
        Forwarded to :func:`build_model`.
    seed, label:
        The trainer's seed and label, which pin the weight-init RNG stream.
    """

    model_name: str
    input_dim: int
    num_classes: int
    seed: int
    label: str
    hidden_sizes: tuple[int, ...] = (64,)

    def __call__(self) -> Module:
        return build_model(
            self.model_name,
            self.input_dim,
            self.num_classes,
            new_rng(self.seed, self.label, "model-init"),
            hidden_sizes=self.hidden_sizes,
        )
