"""Loss functions.

Both losses return the scalar mean loss over the batch from ``forward`` and
the gradient of that mean with respect to the model output from ``backward``,
so the SGD step in Procedure I of Algorithm 1 sees gradients already scaled by
``1/batch_size``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Loss", "SoftmaxCrossEntropyLoss", "MSELoss"]


class Loss:
    """Base class for losses used by the per-client training loop."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        """Return the mean loss over the batch."""
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        """Return d(mean loss)/d(predictions) for the last ``forward`` call."""
        raise NotImplementedError

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)


class SoftmaxCrossEntropyLoss(Loss):
    """Fused softmax + cross-entropy over integer class labels.

    ``predictions`` are raw logits of shape ``(batch, classes)``; ``targets``
    are integer labels of shape ``(batch,)``.  Fusing the two operations keeps
    the backward pass numerically stable (``softmax - one_hot``) and avoids the
    explicit Jacobian product of a standalone softmax layer.
    """

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._targets: np.ndarray | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        logits = np.asarray(predictions, dtype=np.float64)
        labels = np.asarray(targets)
        if logits.ndim != 2:
            raise ValueError(f"expected logits of shape (batch, classes), got {logits.shape}")
        if labels.ndim != 1 or labels.shape[0] != logits.shape[0]:
            raise ValueError(
                f"expected integer labels of shape ({logits.shape[0]},), got {labels.shape}"
            )
        labels = labels.astype(np.int64)
        if labels.min(initial=0) < 0 or labels.max(initial=0) >= logits.shape[1]:
            raise ValueError(
                f"labels must lie in [0, {logits.shape[1]}), got range "
                f"[{labels.min()}, {labels.max()}]"
            )
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        self._probs = probs
        self._targets = labels
        picked = probs[np.arange(labels.shape[0]), labels]
        return float(-np.mean(np.log(np.clip(picked, 1e-12, None))))

    def backward(self) -> np.ndarray:
        if self._probs is None or self._targets is None:
            raise RuntimeError("backward called before forward on SoftmaxCrossEntropyLoss")
        batch = self._targets.shape[0]
        grad = self._probs.copy()
        grad[np.arange(batch), self._targets] -= 1.0
        return grad / batch


class MSELoss(Loss):
    """Mean-squared-error loss over arbitrary-shaped predictions/targets."""

    def __init__(self) -> None:
        self._diff: np.ndarray | None = None
        self._count: int = 0

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        preds = np.asarray(predictions, dtype=np.float64)
        targs = np.asarray(targets, dtype=np.float64)
        if preds.shape != targs.shape:
            raise ValueError(f"shape mismatch: predictions {preds.shape} vs targets {targs.shape}")
        self._diff = preds - targs
        self._count = int(preds.size)
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward on MSELoss")
        return 2.0 * self._diff / self._count
