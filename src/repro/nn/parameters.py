"""Flat parameter-vector access for models.

FAIR-BFL treats model state as a single flat vector ``w`` everywhere outside
the local training loop: clients upload ``w^i_{r+1}``, miners exchange sets of
those vectors, Algorithm 2 clusters them, Equation (1) averages them, and the
winning miner packs the global ``w_{r+1}`` into a block.  These helpers
convert between a :class:`repro.nn.module.Module` and that flat representation.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.utils.vectors import flatten_arrays, unflatten_array

__all__ = [
    "parameter_shapes",
    "get_flat_parameters",
    "set_flat_parameters",
    "get_flat_gradients",
]


def parameter_shapes(model: Module) -> list[tuple[int, ...]]:
    """Shapes of all parameters of ``model`` in traversal order."""
    return [p.shape for p in model.parameters()]


def get_flat_parameters(model: Module) -> np.ndarray:
    """Concatenate all parameters of ``model`` into one 1-D ``float64`` vector."""
    return flatten_arrays(p.value for p in model.parameters())


def get_flat_gradients(model: Module) -> np.ndarray:
    """Concatenate all parameter *gradients* of ``model`` into one flat vector."""
    return flatten_arrays(p.grad for p in model.parameters())


def set_flat_parameters(model: Module, vector: np.ndarray) -> None:
    """Load a flat vector produced by :func:`get_flat_parameters` back into ``model``.

    Raises
    ------
    ValueError
        If the vector length does not match the model's parameter count.
    """
    params = list(model.parameters())
    shapes = [p.shape for p in params]
    arrays = unflatten_array(vector, shapes)
    for param, arr in zip(params, arrays):
        param.value[...] = arr
