"""Batched-across-clients ("cohort") forward/backward kernels.

The serial training path of Procedure I runs one Python loop per client, and
every mini-batch step inside it is a handful of small ``(batch, features)``
matmuls.  This module provides the stacked counterparts: a whole cohort of
clients is processed at once with ``(clients, batch, features)`` activations
and a flat ``(clients, params)`` parameter matrix.

Every kernel is chosen so that its floating-point results are *bit-identical*
to the per-client code in :mod:`repro.nn.layers`, :mod:`repro.nn.losses` and
:mod:`repro.nn.optim`:

* ``np.matmul`` on a stacked operand performs the same dot-product reduction
  per client slice as the 2-D ``x @ w`` of :class:`~repro.nn.layers.Linear`;
* reductions (``max``, ``sum``, ``mean``, ``argmax``) are taken over the
  last, contiguous axis, which NumPy reduces with the same pairwise
  summation as the per-client axis-1 reductions;
* everything else (bias add, activations, the SGD / weight-decay / FedProx
  proximal update) is elementwise, where stacking cannot change the result.

:meth:`CohortModel.from_module` compiles a template
:class:`~repro.nn.module.Module` (the factory-built ``Flatten`` / ``Linear``
/ activation stacks) into a sequence of batched ops plus the flat parameter
layout used by :func:`repro.nn.parameters.get_flat_parameters`.  Models
containing layers without a batched counterpart (e.g. an active ``Dropout``,
whose per-client RNG draws cannot be stacked) raise
:class:`CohortUnsupportedError` so callers can fall back to the serial path.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Dropout, Flatten, Linear, ReLU, Sigmoid, Softmax, Tanh
from repro.nn.module import Module

__all__ = [
    "CohortUnsupportedError",
    "CohortModel",
    "batched_softmax_cross_entropy",
    "batched_softmax_cross_entropy_grad",
    "batched_accuracy",
    "sgd_step",
    "add_proximal_term",
]


class CohortUnsupportedError(TypeError):
    """The model (or layer) has no bit-exact batched counterpart."""


# ---------------------------------------------------------------------------
# Batched layer ops.  Each mirrors the forward/backward of the corresponding
# serial layer with the batch axes extended from (batch, ...) to
# (clients, batch, ...).  Parameters live in a shared flat (clients, P)
# matrix; gradient accumulation writes into the matching flat slice.
# ---------------------------------------------------------------------------


class _CohortOp:
    def forward(self, params: np.ndarray, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(
        self, params: np.ndarray, grads: np.ndarray, grad_output: np.ndarray
    ) -> np.ndarray:
        raise NotImplementedError


class _CohortFlatten(_CohortOp):
    def __init__(self) -> None:
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, params: np.ndarray, x: np.ndarray) -> np.ndarray:
        self._input_shape = x.shape
        return x.reshape(x.shape[0], x.shape[1], -1)

    def backward(self, params, grads, grad_output):
        if self._input_shape is None:
            raise RuntimeError("backward called before forward on cohort Flatten")
        return grad_output.reshape(self._input_shape)


class _CohortIdentity(_CohortOp):
    """Stand-in for layers that are a no-op in this configuration (Dropout p=0)."""

    def forward(self, params, x):
        return x

    def backward(self, params, grads, grad_output):
        return grad_output


class _CohortLinear(_CohortOp):
    def __init__(
        self,
        in_features: int,
        out_features: int,
        weight_slice: tuple[int, int],
        bias_slice: tuple[int, int] | None,
    ) -> None:
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.weight_slice = weight_slice
        self.bias_slice = bias_slice
        self._input_cache: np.ndarray | None = None

    def _weights(self, params: np.ndarray) -> np.ndarray:
        lo, hi = self.weight_slice
        return params[:, lo:hi].reshape(-1, self.in_features, self.out_features)

    def forward(self, params: np.ndarray, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3 or x.shape[2] != self.in_features:
            raise ValueError(
                f"cohort Linear expected input of shape (clients, batch, "
                f"{self.in_features}), got {x.shape}"
            )
        self._input_cache = x
        out = np.matmul(x, self._weights(params))
        if self.bias_slice is not None:
            lo, hi = self.bias_slice
            out = out + params[:, lo:hi][:, None, :]
        return out

    def backward(self, params, grads, grad_output):
        if self._input_cache is None:
            raise RuntimeError("backward called before forward on cohort Linear")
        x = self._input_cache
        lo, hi = self.weight_slice
        grad_w = np.matmul(x.transpose(0, 2, 1), grad_output)
        grads[:, lo:hi] += grad_w.reshape(grad_w.shape[0], -1)
        if self.bias_slice is not None:
            b_lo, b_hi = self.bias_slice
            grads[:, b_lo:b_hi] += grad_output.sum(axis=1)
        return np.matmul(grad_output, self._weights(params).transpose(0, 2, 1))


class _CohortReLU(_CohortOp):
    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, params, x):
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, params, grads, grad_output):
        if self._mask is None:
            raise RuntimeError("backward called before forward on cohort ReLU")
        return np.where(self._mask, grad_output, 0.0)


class _CohortTanh(_CohortOp):
    def __init__(self) -> None:
        self._output: np.ndarray | None = None

    def forward(self, params, x):
        self._output = np.tanh(x)
        return self._output

    def backward(self, params, grads, grad_output):
        if self._output is None:
            raise RuntimeError("backward called before forward on cohort Tanh")
        return grad_output * (1.0 - self._output**2)


class _CohortSigmoid(_CohortOp):
    def __init__(self) -> None:
        self._output: np.ndarray | None = None

    def forward(self, params, x):
        # Numerically stable piecewise formulation (same as the serial layer).
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        exp_x = np.exp(x[~pos])
        out[~pos] = exp_x / (1.0 + exp_x)
        self._output = out
        return out

    def backward(self, params, grads, grad_output):
        if self._output is None:
            raise RuntimeError("backward called before forward on cohort Sigmoid")
        s = self._output
        return grad_output * s * (1.0 - s)


class _CohortSoftmax(_CohortOp):
    def __init__(self) -> None:
        self._output: np.ndarray | None = None

    def forward(self, params, x):
        shifted = x - x.max(axis=2, keepdims=True)
        exp = np.exp(shifted)
        self._output = exp / exp.sum(axis=2, keepdims=True)
        return self._output

    def backward(self, params, grads, grad_output):
        if self._output is None:
            raise RuntimeError("backward called before forward on cohort Softmax")
        s = self._output
        dot = np.sum(grad_output * s, axis=2, keepdims=True)
        return s * (grad_output - dot)


class CohortModel:
    """A template model compiled into batched ops over a flat parameter matrix.

    Instances are stateless apart from per-op forward caches, so one compiled
    model can be reused across rounds and cohort chunks (but not across
    threads).
    """

    def __init__(self, ops: list[_CohortOp], num_parameters: int) -> None:
        self.ops = ops
        self.num_parameters = int(num_parameters)

    @classmethod
    def from_module(cls, model: Module) -> "CohortModel":
        """Compile ``model`` (a Flatten/Linear/activation stack) to batched ops.

        The flat parameter layout follows ``model.parameters()`` order
        (per ``Linear``: weight then bias), i.e. the exact layout of
        :func:`~repro.nn.parameters.get_flat_parameters`.
        """
        layers = getattr(model, "layers", None)
        if layers is None:
            layers = [model]
        ops: list[_CohortOp] = []
        cursor = 0
        for layer in layers:
            if isinstance(layer, Linear):
                weight_slice = (cursor, cursor + layer.in_features * layer.out_features)
                cursor = weight_slice[1]
                bias_slice = None
                if layer.bias is not None:
                    bias_slice = (cursor, cursor + layer.out_features)
                    cursor = bias_slice[1]
                ops.append(
                    _CohortLinear(
                        layer.in_features, layer.out_features, weight_slice, bias_slice
                    )
                )
            elif isinstance(layer, Flatten):
                ops.append(_CohortFlatten())
            elif isinstance(layer, ReLU):
                ops.append(_CohortReLU())
            elif isinstance(layer, Tanh):
                ops.append(_CohortTanh())
            elif isinstance(layer, Sigmoid):
                ops.append(_CohortSigmoid())
            elif isinstance(layer, Softmax):
                ops.append(_CohortSoftmax())
            elif isinstance(layer, Dropout) and layer.rate == 0.0:
                ops.append(_CohortIdentity())
            else:
                raise CohortUnsupportedError(
                    f"layer {type(layer).__name__} has no bit-exact batched "
                    "counterpart; use a serial/thread/process backend instead"
                )
        return cls(ops, cursor)

    def forward(self, params: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Stacked forward pass: ``params`` is (clients, P), ``x`` (clients, batch, ...)."""
        if params.ndim != 2 or params.shape[1] != self.num_parameters:
            raise ValueError(
                f"expected parameters of shape (clients, {self.num_parameters}), "
                f"got {params.shape}"
            )
        out = np.asarray(x, dtype=np.float64)
        for op in self.ops:
            out = op.forward(params, out)
        return out

    def backward(
        self, params: np.ndarray, grads: np.ndarray, grad_output: np.ndarray
    ) -> np.ndarray:
        """Stacked backward pass; accumulates into the flat ``grads`` matrix."""
        g = np.asarray(grad_output, dtype=np.float64)
        for op in reversed(self.ops):
            g = op.backward(params, grads, g)
        return g


# ---------------------------------------------------------------------------
# Batched loss / metric / optimiser kernels.
# ---------------------------------------------------------------------------


def batched_softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[list[float], np.ndarray]:
    """Fused softmax + cross-entropy over a cohort.

    ``logits`` is (clients, batch, classes), ``labels`` (clients, batch).
    Returns the per-client mean losses (Python floats, matching the serial
    ``float(-np.mean(...))`` exactly) and the softmax probabilities needed by
    :func:`batched_softmax_cross_entropy_grad`.
    """
    if logits.ndim != 3:
        raise ValueError(f"expected logits of shape (clients, batch, classes), got {logits.shape}")
    if labels.shape != logits.shape[:2]:
        raise ValueError(
            f"expected labels of shape {logits.shape[:2]}, got {labels.shape}"
        )
    if labels.min(initial=0) < 0 or labels.max(initial=0) >= logits.shape[2]:
        raise ValueError(
            f"labels must lie in [0, {logits.shape[2]}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    shifted = logits - logits.max(axis=2, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=2, keepdims=True)
    picked = np.take_along_axis(probs, labels[:, :, None], axis=2)[:, :, 0]
    means = np.mean(np.log(np.clip(picked, 1e-12, None)), axis=1)
    return [float(-m) for m in means], probs


def batched_softmax_cross_entropy_grad(probs: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Gradient of the per-client mean cross-entropy w.r.t. the logits."""
    grad = probs.copy()
    clients_idx = np.arange(grad.shape[0])[:, None]
    batch_idx = np.arange(grad.shape[1])[None, :]
    grad[clients_idx, batch_idx, labels] -= 1.0
    return grad / labels.shape[1]


def batched_accuracy(logits: np.ndarray, labels: np.ndarray) -> list[float]:
    """Per-client accuracy of stacked (clients, batch, classes) logits."""
    preds = np.argmax(logits, axis=2)
    means = np.mean(preds == labels, axis=1)
    return [float(m) for m in means]


def sgd_step(
    params: np.ndarray,
    grads: np.ndarray,
    *,
    learning_rate: float,
    weight_decay: float = 0.0,
) -> None:
    """In-place SGD step on the flat parameter matrix (mirrors ``SGD.step``)."""
    if weight_decay > 0.0:
        grads = grads + weight_decay * params
    params -= learning_rate * grads


def add_proximal_term(
    grads: np.ndarray,
    params: np.ndarray,
    global_ref: np.ndarray,
    proximal_mu: float,
) -> None:
    """Add the FedProx proximal gradient ``mu * (w - w_global)`` in place."""
    grads += proximal_mu * (params - global_ref[None, :])
