"""Transactions.

Three transaction kinds appear in FAIR-BFL:

* ``GRADIENT_UPLOAD`` — a client's local gradient ``w^i_{r+1}`` sent to its
  associated miner (vanilla BFL records these on-chain; FAIR-BFL keeps them
  off-chain by Assumption 2 and only the miners see them);
* ``GLOBAL_UPDATE`` — the aggregated global gradient ``w_{r+1}`` recorded in
  the block for round ``r+1``;
* ``REWARD`` — one ⟨client, reward⟩ entry of the reward list produced by
  Algorithm 2, appended to the block as a transaction.

Every transaction carries the sender ID, a payload digest, an optional
payload size (bytes) used by the block-size/queueing model, and an RSA
signature over the canonical serialisation (paper Figure 2).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.crypto.keystore import KeyStore

__all__ = [
    "TransactionType",
    "Transaction",
    "make_gradient_transaction",
    "make_reward_transaction",
    "make_global_update_transaction",
]

#: Bytes per float64 element; used to estimate gradient-transaction sizes.
_BYTES_PER_ELEMENT = 8


class TransactionType(str, Enum):
    """The kinds of transactions circulating in the BFL network."""

    GRADIENT_UPLOAD = "gradient_upload"
    GLOBAL_UPDATE = "global_update"
    REWARD = "reward"


@dataclass
class Transaction:
    """A signed ledger transaction.

    Attributes
    ----------
    tx_type:
        One of :class:`TransactionType`.
    sender:
        The entity ID that created (and signed) the transaction.
    round_index:
        The communication round the transaction belongs to.
    payload_digest:
        SHA-256 hex digest of the payload (the gradient bytes or the reward
        record); the ledger stores digests, and the full payload travels with
        the transaction object inside the simulation.
    payload_size_bytes:
        Estimated wire size; feeds the block-size and queueing model.
    metadata:
        Free-form extra fields (e.g. reward amount, contribution label).
    payload:
        In-simulation payload (a gradient vector or a dict); excluded from the
        signed canonical form, which covers only the digest.
    signature:
        RSA signature over :meth:`signing_bytes`.
    """

    tx_type: TransactionType
    sender: str
    round_index: int
    payload_digest: str
    payload_size_bytes: int
    metadata: dict = field(default_factory=dict)
    payload: object | None = None
    signature: int | None = None

    @property
    def tx_id(self) -> str:
        """Deterministic transaction identifier (hash of the canonical form)."""
        return hashlib.sha256(self.signing_bytes()).hexdigest()

    def signing_bytes(self) -> bytes:
        """Canonical byte string covered by the signature."""
        canonical = json.dumps(
            {
                "type": self.tx_type.value,
                "sender": self.sender,
                "round": int(self.round_index),
                "digest": self.payload_digest,
                "size": int(self.payload_size_bytes),
                "metadata": {k: repr(v) for k, v in sorted(self.metadata.items())},
            },
            sort_keys=True,
        )
        return canonical.encode("utf-8")

    def sign(self, keystore: KeyStore) -> "Transaction":
        """Sign in place with the sender's private key and return ``self``."""
        self.signature = keystore.sign(self.sender, self.signing_bytes())
        return self

    def verify(self, keystore: KeyStore) -> bool:
        """Verify the signature against the sender's registered public key."""
        if self.signature is None:
            return False
        return keystore.verify(self.sender, self.signing_bytes(), self.signature)


def _digest_vector(vector: np.ndarray) -> str:
    """SHA-256 digest of a float64 vector's raw bytes."""
    arr = np.ascontiguousarray(np.asarray(vector, dtype=np.float64))
    return hashlib.sha256(arr.tobytes()).hexdigest()


def make_gradient_transaction(
    sender: str,
    round_index: int,
    gradient: np.ndarray,
    *,
    keystore: KeyStore | None = None,
    client_index: int | None = None,
) -> Transaction:
    """Build (and optionally sign) a gradient-upload transaction."""
    gradient = np.asarray(gradient, dtype=np.float64)
    tx = Transaction(
        tx_type=TransactionType.GRADIENT_UPLOAD,
        sender=sender,
        round_index=int(round_index),
        payload_digest=_digest_vector(gradient),
        payload_size_bytes=int(gradient.size) * _BYTES_PER_ELEMENT,
        metadata={} if client_index is None else {"client_index": int(client_index)},
        payload=gradient,
    )
    if keystore is not None:
        tx.sign(keystore)
    return tx


def make_global_update_transaction(
    sender: str,
    round_index: int,
    global_gradient: np.ndarray,
    *,
    keystore: KeyStore | None = None,
) -> Transaction:
    """Build (and optionally sign) the global-update transaction for a round."""
    global_gradient = np.asarray(global_gradient, dtype=np.float64)
    tx = Transaction(
        tx_type=TransactionType.GLOBAL_UPDATE,
        sender=sender,
        round_index=int(round_index),
        payload_digest=_digest_vector(global_gradient),
        payload_size_bytes=int(global_gradient.size) * _BYTES_PER_ELEMENT,
        payload=global_gradient,
    )
    if keystore is not None:
        tx.sign(keystore)
    return tx


def make_reward_transaction(
    sender: str,
    round_index: int,
    client_id: str,
    reward: float,
    *,
    contribution_label: str = "high",
    keystore: KeyStore | None = None,
) -> Transaction:
    """Build (and optionally sign) one reward-list entry ⟨client, reward⟩."""
    record = {"client": client_id, "reward": float(reward), "label": contribution_label}
    digest = hashlib.sha256(json.dumps(record, sort_keys=True).encode("utf-8")).hexdigest()
    tx = Transaction(
        tx_type=TransactionType.REWARD,
        sender=sender,
        round_index=int(round_index),
        payload_digest=digest,
        payload_size_bytes=len(json.dumps(record)),
        metadata={
            "client": client_id,
            "reward": float(reward),
            "label": contribution_label,
        },
        payload=record,
    )
    if keystore is not None:
        tx.sign(keystore)
    return tx
