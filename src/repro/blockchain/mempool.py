"""Block-size-limited transaction queue.

Vanilla BFL records *every* local gradient on-chain; when the per-round
transaction volume exceeds the block size, transactions queue across blocks
and the round cannot complete until every gradient is recorded (paper
Section 3.1 and the queueing knee of Figure 6a).  The :class:`Mempool`
implements that mechanism: it accepts transactions, and :meth:`take_block`
pops as many as fit under the size limit in FIFO order.
"""

from __future__ import annotations

from collections import deque

from repro.blockchain.transaction import Transaction

__all__ = ["Mempool"]


class Mempool:
    """FIFO transaction pool with a per-block byte budget.

    Parameters
    ----------
    block_size_bytes:
        Maximum total ``payload_size_bytes`` a single block may carry.
    """

    def __init__(self, block_size_bytes: int) -> None:
        if block_size_bytes <= 0:
            raise ValueError(f"block_size_bytes must be positive, got {block_size_bytes}")
        self.block_size_bytes = int(block_size_bytes)
        self._queue: deque[Transaction] = deque()
        self._seen_ids: set[str] = set()

    def submit(self, tx: Transaction) -> bool:
        """Add a transaction to the pool; duplicates (same tx_id) are ignored.

        Returns ``True`` when the transaction was newly enqueued.
        """
        tx_id = tx.tx_id
        if tx_id in self._seen_ids:
            return False
        self._seen_ids.add(tx_id)
        self._queue.append(tx)
        return True

    def submit_many(self, txs: list[Transaction]) -> int:
        """Submit a batch of transactions; returns how many were newly enqueued."""
        return sum(1 for tx in txs if self.submit(tx))

    def take_block(self) -> list[Transaction]:
        """Pop the FIFO prefix of transactions that fits in one block.

        At least one transaction is always returned when the pool is non-empty,
        even if that single transaction exceeds the block size (a real chain
        would reject it; for the simulation an oversized gradient simply
        occupies a block by itself, which matches the paper's discussion of
        large gradients missing the current block).
        """
        taken: list[Transaction] = []
        used = 0
        while self._queue:
            nxt = self._queue[0]
            if taken and used + nxt.payload_size_bytes > self.block_size_bytes:
                break
            taken.append(self._queue.popleft())
            used += nxt.payload_size_bytes
            if used >= self.block_size_bytes:
                break
        for tx in taken:
            self._seen_ids.discard(tx.tx_id)
        return taken

    def blocks_required(self, txs: list[Transaction] | None = None) -> int:
        """How many blocks are needed to drain ``txs`` (or the current pool).

        This is the quantity that determines vanilla BFL's per-round block
        count: a round only completes once *all* gradient transactions are
        on-chain (Section 3.1), so the round delay scales with this number.
        """
        if txs is None:
            sizes = [tx.payload_size_bytes for tx in self._queue]
        else:
            sizes = [tx.payload_size_bytes for tx in txs]
        if not sizes:
            return 0
        blocks = 0
        used = 0
        filled_any = False
        for size in sizes:
            if filled_any and used + size > self.block_size_bytes:
                blocks += 1
                used = 0
                filled_any = False
            used += size
            filled_any = True
            if used >= self.block_size_bytes:
                blocks += 1
                used = 0
                filled_any = False
        if filled_any:
            blocks += 1
        return blocks

    @property
    def pending_count(self) -> int:
        """Number of queued transactions."""
        return len(self._queue)

    @property
    def pending_bytes(self) -> int:
        """Total payload bytes currently queued."""
        return sum(tx.payload_size_bytes for tx in self._queue)

    def clear(self) -> None:
        """Drop every queued transaction."""
        self._queue.clear()
        self._seen_ids.clear()

    def __len__(self) -> int:
        return len(self._queue)
