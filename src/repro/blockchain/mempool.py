"""Block-size-limited transaction queue.

Vanilla BFL records *every* local gradient on-chain; when the per-round
transaction volume exceeds the block size, transactions queue across blocks
and the round cannot complete until every gradient is recorded (paper
Section 3.1 and the queueing knee of Figure 6a).  The :class:`Mempool`
implements that mechanism: it accepts transactions, and :meth:`take_block`
pops as many as fit under the size limit in FIFO order.

In the event-driven simulation (:mod:`repro.sim.rounds`) the mempool is the
queueing actor of the chain layer: every block-solve event drains one
:meth:`take_block` batch, so the number of mining competitions a round pays is
exactly :meth:`blocks_required` — both methods share one packing rule.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

from repro.blockchain.transaction import Transaction

__all__ = ["Mempool", "pack_block_counts"]


def pack_block_counts(sizes: Iterable[int], capacity: int) -> Iterator[int]:
    """Yield how many FIFO transactions each successive block takes.

    One packing rule shared by :meth:`Mempool.take_block` (which materialises
    only the first count) and :meth:`Mempool.blocks_required` (which sums all
    of them): a block closes when adding the next transaction would exceed
    ``capacity``, except that a block always takes at least one transaction —
    an oversized transaction occupies a block by itself (a real chain would
    reject it; for the simulation a too-large gradient simply misses sharing a
    block, matching the paper's discussion of large gradients).
    """
    count = 0
    used = 0
    for size in sizes:
        if count and used + size > capacity:
            yield count
            count = 0
            used = 0
        count += 1
        used += size
        if used >= capacity:
            yield count
            count = 0
            used = 0
    if count:
        yield count


class Mempool:
    """FIFO transaction pool with a per-block byte budget.

    Parameters
    ----------
    block_size_bytes:
        Maximum total ``payload_size_bytes`` a single block may carry.
    """

    def __init__(self, block_size_bytes: int) -> None:
        if block_size_bytes <= 0:
            raise ValueError(f"block_size_bytes must be positive, got {block_size_bytes}")
        self.block_size_bytes = int(block_size_bytes)
        self._queue: deque[Transaction] = deque()
        self._seen_ids: set[str] = set()
        self._pending_bytes = 0

    def submit(self, tx: Transaction) -> bool:
        """Add a transaction to the pool; duplicates (same tx_id) are ignored.

        Returns ``True`` when the transaction was newly enqueued.
        """
        tx_id = tx.tx_id
        if tx_id in self._seen_ids:
            return False
        self._seen_ids.add(tx_id)
        self._queue.append(tx)
        self._pending_bytes += tx.payload_size_bytes
        return True

    def submit_many(self, txs: list[Transaction]) -> int:
        """Submit a batch of transactions; returns how many were newly enqueued."""
        return sum(1 for tx in txs if self.submit(tx))

    def take_block(self) -> list[Transaction]:
        """Pop the FIFO prefix of transactions that fits in one block.

        At least one transaction is always returned when the pool is non-empty
        (see :func:`pack_block_counts` for the oversized-transaction rule).
        """
        if not self._queue:
            return []
        count = next(
            pack_block_counts((tx.payload_size_bytes for tx in self._queue), self.block_size_bytes)
        )
        taken = [self._queue.popleft() for _ in range(count)]
        for tx in taken:
            self._seen_ids.discard(tx.tx_id)
            self._pending_bytes -= tx.payload_size_bytes
        return taken

    def blocks_required(self, txs: list[Transaction] | None = None) -> int:
        """How many blocks are needed to drain ``txs`` (or the current pool).

        This is the quantity that determines vanilla BFL's per-round block
        count: a round only completes once *all* gradient transactions are
        on-chain (Section 3.1), so the round delay scales with this number.
        """
        source = self._queue if txs is None else txs
        return sum(
            1
            for _ in pack_block_counts(
                (tx.payload_size_bytes for tx in source), self.block_size_bytes
            )
        )

    def evict_included(self, included: "Iterable[str] | object") -> int:
        """Drop queued transactions already recorded in an adopted chain.

        ``included`` is either an iterable of transaction IDs or a
        chain-shaped object exposing ``blocks`` (each with ``transactions``) —
        duck-typed so the mempool stays import-independent of the chain layer.
        Once a node adopts a chain (a gossiped block, or a whole reorged
        view), anything the chain already carries must leave the pool, or the
        node would re-mine transactions the network has settled.  Returns the
        number of transactions evicted.
        """
        blocks = getattr(included, "blocks", None)
        if blocks is not None:
            ids = {tx.tx_id for block in blocks for tx in block.transactions}
        else:
            ids = {str(tx_id) for tx_id in included}
        return self._evict(lambda tx: tx.tx_id in ids)

    def evict_older_than(self, round_index: int) -> int:
        """Expire queued transactions from rounds before ``round_index``.

        Per-node mempools accumulate gossiped transactions for rounds the
        node's adopted chain has since finalised; those can never be mined
        again (one block settles a round), so they expire once the chain tip
        passes their round.  Returns the number of transactions evicted.
        """
        cutoff = int(round_index)
        return self._evict(lambda tx: tx.round_index < cutoff)

    def _evict(self, should_drop) -> int:
        """Rebuild the queue without the transactions ``should_drop`` selects."""
        if not self._queue:
            return 0
        kept: deque[Transaction] = deque()
        evicted = 0
        for tx in self._queue:
            if should_drop(tx):
                evicted += 1
                self._seen_ids.discard(tx.tx_id)
                self._pending_bytes -= tx.payload_size_bytes
            else:
                kept.append(tx)
        self._queue = kept
        return evicted

    @property
    def pending_count(self) -> int:
        """Number of queued transactions."""
        return len(self._queue)

    @property
    def pending_bytes(self) -> int:
        """Total payload bytes currently queued (maintained incrementally)."""
        return self._pending_bytes

    def clear(self) -> None:
        """Drop every queued transaction."""
        self._queue.clear()
        self._seen_ids.clear()
        self._pending_bytes = 0

    def __len__(self) -> int:
        return len(self._queue)
