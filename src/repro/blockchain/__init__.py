"""Blockchain substrate.

Implements the distributed-ledger machinery FAIR-BFL runs on top of:

* :mod:`repro.blockchain.transaction` — signed transactions (gradient uploads,
  reward payouts, global-update records);
* :mod:`repro.blockchain.merkle` — Merkle trees over transaction IDs;
* :mod:`repro.blockchain.block` — block headers/bodies with SHA-256 linking;
* :mod:`repro.blockchain.pow` — proof-of-work nonce search (paper Eq. 4) plus
  the stochastic mining-time model used at simulation scale;
* :mod:`repro.blockchain.mempool` — block-size-limited transaction queue (the
  source of vanilla BFL's queueing delay, Fig. 6a);
* :mod:`repro.blockchain.chain` — append/validate/fork-tracking ledger plus
  the deterministic fork-choice rule (longest chain, seeded hash tie-break)
  and reorg handling the gossip substrate (:mod:`repro.net`) builds on;
* :mod:`repro.blockchain.miner` — miner nodes combining the above;
* :mod:`repro.blockchain.network` — broadcast network with latency;
* :mod:`repro.blockchain.consensus` — longest-chain consensus and the
  fork-probability model that drives Fig. 6b.
"""

from repro.blockchain.block import Block, BlockHeader, GENESIS_PREVIOUS_HASH
from repro.blockchain.chain import Blockchain, BlockValidationError, ForkChoice
from repro.blockchain.consensus import ForkModel, LongestChainConsensus
from repro.blockchain.mempool import Mempool
from repro.blockchain.merkle import merkle_root
from repro.blockchain.miner import Miner
from repro.blockchain.network import BroadcastNetwork, NetworkMessage
from repro.blockchain.pow import MiningResult, mine_block, sample_mining_time
from repro.blockchain.transaction import (
    Transaction,
    TransactionType,
    make_global_update_transaction,
    make_gradient_transaction,
    make_reward_transaction,
)

__all__ = [
    "Block",
    "BlockHeader",
    "GENESIS_PREVIOUS_HASH",
    "Blockchain",
    "BlockValidationError",
    "ForkChoice",
    "ForkModel",
    "LongestChainConsensus",
    "Mempool",
    "merkle_root",
    "Miner",
    "BroadcastNetwork",
    "NetworkMessage",
    "MiningResult",
    "mine_block",
    "sample_mining_time",
    "Transaction",
    "TransactionType",
    "make_global_update_transaction",
    "make_gradient_transaction",
    "make_reward_transaction",
]
