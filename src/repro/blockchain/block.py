"""Blocks: header, body, hashing.

In FAIR-BFL (Assumption 2) every block carries exactly one round's global
gradient plus that round's reward transactions; in the vanilla-BFL baseline a
block carries whatever gradient-upload transactions fit under the block-size
limit.  The same :class:`Block` type serves both: the orchestrators decide
what goes inside.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.blockchain.merkle import merkle_root
from repro.blockchain.transaction import Transaction, TransactionType
from repro.crypto.hashing import sha256_hex

__all__ = ["BlockHeader", "Block", "GENESIS_PREVIOUS_HASH"]

#: Previous-hash value of the genesis block.
GENESIS_PREVIOUS_HASH = "0" * 64


@dataclass
class BlockHeader:
    """The mined portion of a block.

    Attributes
    ----------
    index:
        Height of the block in the chain (genesis = 0).
    previous_hash:
        Hash of the parent block header.
    merkle_root:
        Merkle root over the body's transaction IDs.
    round_index:
        The FL communication round this block finalises (-1 for genesis).
    miner_id:
        Identifier of the miner that produced the block.
    nonce:
        Proof-of-work nonce.
    timestamp:
        Simulated time at which the block was created.
    difficulty:
        Mining difficulty in force when the block was mined.
    """

    index: int
    previous_hash: str
    merkle_root: str
    round_index: int
    miner_id: str
    nonce: int = 0
    timestamp: float = 0.0
    difficulty: float = 1.0

    def serialize(self) -> bytes:
        """Canonical byte serialisation hashed by the proof of work."""
        return json.dumps(
            {
                "index": int(self.index),
                "previous_hash": self.previous_hash,
                "merkle_root": self.merkle_root,
                "round_index": int(self.round_index),
                "miner_id": self.miner_id,
                "nonce": int(self.nonce),
                "timestamp": float(self.timestamp),
                "difficulty": float(self.difficulty),
            },
            sort_keys=True,
        ).encode("utf-8")

    def compute_hash(self) -> str:
        """SHA-256 hash of the serialised header (``H(nonce + Block)`` of Eq. 4)."""
        return sha256_hex(self.serialize())


@dataclass
class Block:
    """A full block: header plus transaction body."""

    header: BlockHeader
    transactions: list[Transaction] = field(default_factory=list)

    @property
    def block_hash(self) -> str:
        """Hash of the block header."""
        return self.header.compute_hash()

    @property
    def index(self) -> int:
        return self.header.index

    @property
    def round_index(self) -> int:
        return self.header.round_index

    @property
    def size_bytes(self) -> int:
        """Approximate wire size of the block (header + payload sizes)."""
        header_size = len(self.header.serialize())
        return header_size + sum(tx.payload_size_bytes for tx in self.transactions)

    def global_update(self) -> np.ndarray | None:
        """Return the global-gradient payload if this block records one."""
        for tx in self.transactions:
            if tx.tx_type is TransactionType.GLOBAL_UPDATE and tx.payload is not None:
                return np.asarray(tx.payload, dtype=np.float64)
        return None

    def reward_records(self) -> list[dict]:
        """All reward transactions' metadata records in block order."""
        return [
            dict(tx.metadata)
            for tx in self.transactions
            if tx.tx_type is TransactionType.REWARD
        ]

    def validate_merkle_root(self) -> bool:
        """Check the header's Merkle root against the body."""
        return self.header.merkle_root == merkle_root([tx.tx_id for tx in self.transactions])

    @classmethod
    def create(
        cls,
        *,
        index: int,
        previous_hash: str,
        round_index: int,
        miner_id: str,
        transactions: list[Transaction],
        timestamp: float = 0.0,
        difficulty: float = 1.0,
    ) -> "Block":
        """Assemble an (un-mined) block whose header commits to ``transactions``."""
        header = BlockHeader(
            index=int(index),
            previous_hash=previous_hash,
            merkle_root=merkle_root([tx.tx_id for tx in transactions]),
            round_index=int(round_index),
            miner_id=miner_id,
            timestamp=float(timestamp),
            difficulty=float(difficulty),
        )
        return cls(header=header, transactions=list(transactions))

    @classmethod
    def genesis(cls, *, initial_global_update: Transaction | None = None) -> "Block":
        """The genesis block (optionally carrying the initial global parameters)."""
        txs = [] if initial_global_update is None else [initial_global_update]
        return cls.create(
            index=0,
            previous_hash=GENESIS_PREVIOUS_HASH,
            round_index=-1,
            miner_id="genesis",
            transactions=txs,
        )
