"""Ledger serialisation.

Converts blocks and whole chains to/from JSON-compatible dictionaries so a
simulation's ledger can be persisted, inspected, or audited offline.  Gradient
payloads are stored as plain lists (the block already commits to them through
the payload digest, and deserialisation re-verifies both the digests and the
chain links).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.blockchain.block import Block, BlockHeader
from repro.blockchain.chain import Blockchain
from repro.blockchain.transaction import Transaction, TransactionType

__all__ = [
    "transaction_to_dict",
    "transaction_from_dict",
    "block_to_dict",
    "block_from_dict",
    "chain_to_dict",
    "chain_from_dict",
    "save_chain",
    "load_chain",
]


def transaction_to_dict(tx: Transaction) -> dict:
    """JSON-compatible representation of a transaction."""
    payload = tx.payload
    if isinstance(payload, np.ndarray):
        payload = {"__ndarray__": payload.tolist()}
    return {
        "tx_type": tx.tx_type.value,
        "sender": tx.sender,
        "round_index": tx.round_index,
        "payload_digest": tx.payload_digest,
        "payload_size_bytes": tx.payload_size_bytes,
        "metadata": dict(tx.metadata),
        "payload": payload,
        "signature": None if tx.signature is None else str(tx.signature),
    }


def transaction_from_dict(data: dict) -> Transaction:
    """Rebuild a transaction from :func:`transaction_to_dict` output."""
    payload = data.get("payload")
    if isinstance(payload, dict) and "__ndarray__" in payload:
        payload = np.asarray(payload["__ndarray__"], dtype=np.float64)
    signature = data.get("signature")
    return Transaction(
        tx_type=TransactionType(data["tx_type"]),
        sender=data["sender"],
        round_index=int(data["round_index"]),
        payload_digest=data["payload_digest"],
        payload_size_bytes=int(data["payload_size_bytes"]),
        metadata=dict(data.get("metadata", {})),
        payload=payload,
        signature=None if signature is None else int(signature),
    )


def block_to_dict(block: Block) -> dict:
    """JSON-compatible representation of a block (header + transactions)."""
    h = block.header
    return {
        "header": {
            "index": h.index,
            "previous_hash": h.previous_hash,
            "merkle_root": h.merkle_root,
            "round_index": h.round_index,
            "miner_id": h.miner_id,
            "nonce": h.nonce,
            "timestamp": h.timestamp,
            "difficulty": h.difficulty,
        },
        "transactions": [transaction_to_dict(tx) for tx in block.transactions],
        "block_hash": block.block_hash,
    }


def block_from_dict(data: dict) -> Block:
    """Rebuild a block from :func:`block_to_dict` output.

    Raises
    ------
    ValueError
        If the stored hash or Merkle root no longer matches the content
        (i.e. the serialised form was tampered with).
    """
    h = data["header"]
    header = BlockHeader(
        index=int(h["index"]),
        previous_hash=h["previous_hash"],
        merkle_root=h["merkle_root"],
        round_index=int(h["round_index"]),
        miner_id=h["miner_id"],
        nonce=int(h["nonce"]),
        timestamp=float(h["timestamp"]),
        difficulty=float(h["difficulty"]),
    )
    block = Block(
        header=header,
        transactions=[transaction_from_dict(t) for t in data["transactions"]],
    )
    if not block.validate_merkle_root():
        raise ValueError(
            f"block {header.index} fails Merkle validation after deserialisation"
        )
    stored_hash = data.get("block_hash")
    if stored_hash is not None and stored_hash != block.block_hash:
        raise ValueError(
            f"block {header.index} hash mismatch after deserialisation "
            f"(stored {stored_hash[:12]}…, recomputed {block.block_hash[:12]}…)"
        )
    return block


def chain_to_dict(chain: Blockchain) -> dict:
    """JSON-compatible representation of a full ledger."""
    return {
        "enforce_pow": chain.enforce_pow,
        "fork_events": chain.fork_events,
        "blocks": [block_to_dict(b) for b in chain.blocks],
    }


def chain_from_dict(data: dict) -> Blockchain:
    """Rebuild (and fully re-validate) a ledger from :func:`chain_to_dict` output."""
    chain = Blockchain(enforce_pow=bool(data.get("enforce_pow", True)))
    blocks = [block_from_dict(b) for b in data.get("blocks", [])]
    if blocks:
        chain.add_genesis(blocks[0])
        for block in blocks[1:]:
            chain.add_block(block)
    chain.fork_events = int(data.get("fork_events", 0))
    return chain


def save_chain(chain: Blockchain, path: str | Path) -> Path:
    """Write a ledger to ``path`` as JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(chain_to_dict(chain)), encoding="utf-8")
    return path


def load_chain(path: str | Path) -> Blockchain:
    """Load and re-validate a ledger previously written by :func:`save_chain`."""
    return chain_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
