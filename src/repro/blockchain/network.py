"""Broadcast network with latency.

Miners broadcast gradient sets (Procedure III) and newly mined blocks
(Procedure V) to each other, and clients upload gradients to their associated
miner (Procedure II).  The :class:`BroadcastNetwork` models those message
exchanges with per-link latencies drawn from a configurable distribution; the
topology is a complete graph over miners (built with :mod:`networkx` so
alternative topologies can be swapped in).

Two delivery styles:

* **immediate** — :meth:`send` / :meth:`broadcast` sample a latency and return
  delivered messages synchronously (the caller owns time);
* **event-driven** — :meth:`send_via` / :meth:`broadcast_via` schedule the
  delivery on an :class:`~repro.sim.events.EventKernel`, so the message
  arrives as a timestamped event and handlers run at arrival time.

Long simulations deliver millions of messages, so the network keeps O(1)
*counters* (:attr:`message_count`, :attr:`total_latency`) instead of an
unbounded log; per-message recording is opt-in and bounded via
``record_limit`` (the newest ``record_limit`` messages are retained in
:attr:`recent_messages`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import networkx as nx
import numpy as np

from repro.utils.validation import check_non_negative

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.events import EventKernel, ScheduledEvent

__all__ = ["NetworkMessage", "BroadcastNetwork"]


@dataclass(frozen=True)
class NetworkMessage:
    """A delivered message with its simulated latency."""

    sender: str
    receiver: str
    payload: object
    latency: float


@dataclass
class BroadcastNetwork:
    """Complete-graph broadcast network over a set of node IDs.

    Parameters
    ----------
    node_ids:
        Participating node identifiers (miners and/or clients).
    rng:
        Generator for latency sampling.
    base_latency:
        Mean one-way latency in seconds between any two distinct nodes.
    jitter:
        Standard deviation of the log-normal multiplicative jitter applied to
        each delivery (0 disables jitter).
    record_limit:
        Per-message recording budget: ``0`` (default) disables recording and
        the network only maintains counters; a positive value keeps the newest
        that-many messages in :attr:`recent_messages`.
    """

    node_ids: list[str]
    rng: np.random.Generator
    base_latency: float = 0.05
    jitter: float = 0.25
    record_limit: int = 0
    graph: nx.Graph = field(init=False, repr=False)
    message_count: int = field(default=0, init=False)
    total_latency: float = field(default=0.0, init=False)
    recent_messages: deque[NetworkMessage] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.node_ids:
            raise ValueError("BroadcastNetwork requires at least one node")
        if len(set(self.node_ids)) != len(self.node_ids):
            raise ValueError("node_ids must be unique")
        self.base_latency = check_non_negative("base_latency", self.base_latency)
        self.jitter = check_non_negative("jitter", self.jitter)
        if self.record_limit < 0:
            raise ValueError(f"record_limit must be >= 0, got {self.record_limit}")
        self.graph = nx.complete_graph(self.node_ids)
        self.recent_messages = deque(maxlen=self.record_limit or None)

    def _sample_latency(self) -> float:
        if self.base_latency == 0.0:
            return 0.0
        if self.jitter == 0.0:
            return self.base_latency
        return float(self.base_latency * self.rng.lognormal(mean=0.0, sigma=self.jitter))

    def _account(self, msg: NetworkMessage) -> None:
        self.message_count += 1
        self.total_latency += msg.latency
        if self.record_limit:
            self.recent_messages.append(msg)

    # -- immediate delivery ---------------------------------------------------
    def send(self, sender: str, receiver: str, payload: object) -> NetworkMessage:
        """Deliver one point-to-point message and return it with its latency."""
        self._check_node(sender)
        self._check_node(receiver)
        latency = 0.0 if sender == receiver else self._sample_latency()
        msg = NetworkMessage(sender=sender, receiver=receiver, payload=payload, latency=latency)
        self._account(msg)
        return msg

    def broadcast(self, sender: str, payload: object) -> list[NetworkMessage]:
        """Deliver ``payload`` from ``sender`` to every other node.

        Returns the per-receiver messages; the broadcast completes when the
        slowest delivery arrives, so callers typically use
        ``max(m.latency for m in messages)`` as the broadcast latency.
        """
        self._check_node(sender)
        messages = [
            self.send(sender, receiver, payload)
            for receiver in self.node_ids
            if receiver != sender
        ]
        return messages

    def broadcast_latency(self, messages: list[NetworkMessage]) -> float:
        """Completion latency of a broadcast (max over deliveries, 0 for none)."""
        return max((m.latency for m in messages), default=0.0)

    def all_pairs_exchange(self, payload_by_sender: dict[str, object]) -> float:
        """Every sender broadcasts its payload; return the overall completion latency.

        This models Procedure III (gradient-set exchange among miners): the
        procedure finishes when the slowest delivery of the slowest broadcast
        lands, and all broadcasts run in parallel.
        """
        worst = 0.0
        for sender, payload in payload_by_sender.items():
            msgs = self.broadcast(sender, payload)
            worst = max(worst, self.broadcast_latency(msgs))
        return worst

    # -- event-driven delivery ------------------------------------------------
    def send_via(
        self,
        kernel: "EventKernel",
        sender: str,
        receiver: str,
        payload: object = None,
        *,
        on_deliver: Callable[[NetworkMessage], None] | None = None,
    ) -> "ScheduledEvent":
        """Schedule a point-to-point delivery on ``kernel``.

        The latency is sampled now (so the draw order is deterministic), the
        message is accounted and ``on_deliver`` invoked when the delivery
        event fires.
        """
        self._check_node(sender)
        self._check_node(receiver)
        latency = 0.0 if sender == receiver else self._sample_latency()
        msg = NetworkMessage(sender=sender, receiver=receiver, payload=payload, latency=latency)

        def deliver() -> None:
            self._account(msg)
            if on_deliver is not None:
                on_deliver(msg)

        return kernel.schedule(latency, deliver, name=f"net:{sender}->{receiver}")

    def broadcast_via(
        self,
        kernel: "EventKernel",
        sender: str,
        payload: object = None,
        *,
        on_deliver: Callable[[NetworkMessage], None] | None = None,
    ) -> list["ScheduledEvent"]:
        """Schedule deliveries of ``payload`` to every other node on ``kernel``."""
        self._check_node(sender)
        return [
            self.send_via(kernel, sender, receiver, payload, on_deliver=on_deliver)
            for receiver in self.node_ids
            if receiver != sender
        ]

    def _check_node(self, node_id: str) -> None:
        if node_id not in self.graph:
            raise KeyError(f"unknown network node {node_id!r}")

    @property
    def mean_latency(self) -> float:
        """Average delivered latency so far (0 before any delivery)."""
        return self.total_latency / self.message_count if self.message_count else 0.0
