"""Broadcast network with latency.

Miners broadcast gradient sets (Procedure III) and newly mined blocks
(Procedure V) to each other, and clients upload gradients to their associated
miner (Procedure II).  The :class:`BroadcastNetwork` models those message
exchanges with per-link latencies drawn from a configurable distribution; the
topology is a complete graph over miners (built with :mod:`networkx` so
alternative topologies can be swapped in).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.utils.validation import check_non_negative

__all__ = ["NetworkMessage", "BroadcastNetwork"]


@dataclass(frozen=True)
class NetworkMessage:
    """A delivered message with its simulated latency."""

    sender: str
    receiver: str
    payload: object
    latency: float


@dataclass
class BroadcastNetwork:
    """Complete-graph broadcast network over a set of node IDs.

    Parameters
    ----------
    node_ids:
        Participating node identifiers (miners and/or clients).
    rng:
        Generator for latency sampling.
    base_latency:
        Mean one-way latency in seconds between any two distinct nodes.
    jitter:
        Standard deviation of the log-normal multiplicative jitter applied to
        each delivery (0 disables jitter).
    """

    node_ids: list[str]
    rng: np.random.Generator
    base_latency: float = 0.05
    jitter: float = 0.25
    graph: nx.Graph = field(init=False, repr=False)
    delivered: list[NetworkMessage] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if not self.node_ids:
            raise ValueError("BroadcastNetwork requires at least one node")
        if len(set(self.node_ids)) != len(self.node_ids):
            raise ValueError("node_ids must be unique")
        self.base_latency = check_non_negative("base_latency", self.base_latency)
        self.jitter = check_non_negative("jitter", self.jitter)
        self.graph = nx.complete_graph(self.node_ids)

    def _sample_latency(self) -> float:
        if self.base_latency == 0.0:
            return 0.0
        if self.jitter == 0.0:
            return self.base_latency
        return float(self.base_latency * self.rng.lognormal(mean=0.0, sigma=self.jitter))

    def send(self, sender: str, receiver: str, payload: object) -> NetworkMessage:
        """Deliver one point-to-point message and return it with its latency."""
        self._check_node(sender)
        self._check_node(receiver)
        latency = 0.0 if sender == receiver else self._sample_latency()
        msg = NetworkMessage(sender=sender, receiver=receiver, payload=payload, latency=latency)
        self.delivered.append(msg)
        return msg

    def broadcast(self, sender: str, payload: object) -> list[NetworkMessage]:
        """Deliver ``payload`` from ``sender`` to every other node.

        Returns the per-receiver messages; the broadcast completes when the
        slowest delivery arrives, so callers typically use
        ``max(m.latency for m in messages)`` as the broadcast latency.
        """
        self._check_node(sender)
        messages = [
            self.send(sender, receiver, payload)
            for receiver in self.node_ids
            if receiver != sender
        ]
        return messages

    def broadcast_latency(self, messages: list[NetworkMessage]) -> float:
        """Completion latency of a broadcast (max over deliveries, 0 for none)."""
        return max((m.latency for m in messages), default=0.0)

    def all_pairs_exchange(self, payload_by_sender: dict[str, object]) -> float:
        """Every sender broadcasts its payload; return the overall completion latency.

        This models Procedure III (gradient-set exchange among miners): the
        procedure finishes when the slowest delivery of the slowest broadcast
        lands, and all broadcasts run in parallel.
        """
        worst = 0.0
        for sender, payload in payload_by_sender.items():
            msgs = self.broadcast(sender, payload)
            worst = max(worst, self.broadcast_latency(msgs))
        return worst

    def _check_node(self, node_id: str) -> None:
        if node_id not in self.graph:
            raise KeyError(f"unknown network node {node_id!r}")

    @property
    def message_count(self) -> int:
        """Total messages delivered so far."""
        return len(self.delivered)
