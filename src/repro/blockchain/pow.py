"""Proof of work.

Two layers are provided:

* :func:`mine_block` — the *functional* proof of work of Equation (4): search
  for a nonce such that ``SHA256(header) < Target``.  Used at low difficulty to
  demonstrate that the ledger machinery is real (hash links verify, tampering
  is detected) without burning CPU.
* :func:`sample_mining_time` — the *timing* model: at realistic difficulties a
  PoW winner's solve time is exponentially distributed with mean
  ``difficulty / hash_rate``; the winning miner is the minimum over the
  per-miner exponential draws.  The delay figures of the paper (T_bl in
  Section 4.5) are driven by this model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.blockchain.block import Block
from repro.crypto.hashing import difficulty_to_target, meets_target

__all__ = ["MiningResult", "mine_block", "sample_mining_time", "sample_winner"]


@dataclass(frozen=True)
class MiningResult:
    """Outcome of a nonce search."""

    success: bool
    nonce: int
    block_hash: str
    attempts: int


def mine_block(
    block: Block,
    *,
    difficulty: float = 1.0,
    max_attempts: int = 1_000_000,
    start_nonce: int = 0,
) -> MiningResult:
    """Search for a nonce satisfying Equation (4) and write it into the header.

    Parameters
    ----------
    block:
        The block to mine; its header's ``nonce`` is updated on success.
    difficulty:
        Mining difficulty (>= 1).  The target is ``MAX_TARGET / difficulty``.
    max_attempts:
        Upper bound on nonce trials; a failure result is returned if exceeded
        (callers treat this as a programming error at the low difficulties
        used in simulation).
    start_nonce:
        First nonce to try (lets different miners search disjoint ranges).
    """
    if max_attempts <= 0:
        raise ValueError(f"max_attempts must be positive, got {max_attempts}")
    target = difficulty_to_target(difficulty)
    block.header.difficulty = float(difficulty)
    nonce = int(start_nonce)
    for attempt in range(1, max_attempts + 1):
        block.header.nonce = nonce
        digest = block.header.compute_hash()
        if meets_target(digest, target):
            return MiningResult(success=True, nonce=nonce, block_hash=digest, attempts=attempt)
        nonce += 1
    return MiningResult(
        success=False, nonce=block.header.nonce, block_hash=block.header.compute_hash(),
        attempts=max_attempts,
    )


def sample_mining_time(
    rng: np.random.Generator,
    *,
    difficulty: float,
    hash_rate: float,
) -> float:
    """Sample one miner's PoW solve time (seconds).

    The number of hashes needed to find a block below the target is
    geometrically distributed with success probability ``1/difficulty``; at the
    hash counts of interest this is an exponential solve time with mean
    ``difficulty / hash_rate``.
    """
    if difficulty < 1.0:
        raise ValueError(f"difficulty must be >= 1, got {difficulty}")
    if hash_rate <= 0.0:
        raise ValueError(f"hash_rate must be positive, got {hash_rate}")
    mean_time = difficulty / hash_rate
    return float(rng.exponential(mean_time))


def sample_winner(
    rng: np.random.Generator,
    miner_ids: list[str],
    *,
    difficulty: float,
    hash_rates: dict[str, float] | None = None,
    default_hash_rate: float = 1.0,
) -> tuple[str, float]:
    """Sample the mining-competition winner and the winning solve time.

    Each miner draws an independent exponential solve time; the minimum wins.
    Returns ``(winner_id, winning_time_seconds)``.
    """
    if not miner_ids:
        raise ValueError("at least one miner is required to run a mining competition")
    times = []
    for mid in miner_ids:
        rate = default_hash_rate if hash_rates is None else hash_rates.get(mid, default_hash_rate)
        times.append(sample_mining_time(rng, difficulty=difficulty, hash_rate=rate))
    best = int(np.argmin(times))
    return miner_ids[best], float(times[best])
