"""Merkle tree over transaction identifiers.

Blocks commit to their transaction set through a Merkle root, exactly as a
conventional blockchain does; the proof helpers are used by the tests to show
membership verification works end-to-end.
"""

from __future__ import annotations

from repro.crypto.hashing import sha256_hex

__all__ = ["merkle_root", "merkle_proof", "verify_merkle_proof"]

#: Root used for an empty transaction list (a block with no transactions is
#: legal in vanilla blockchain — the "empty block" problem of Section 3.1).
EMPTY_ROOT = sha256_hex(b"empty-merkle-tree")


def _build_levels(leaves: list[str]) -> list[list[str]]:
    """Build all tree levels bottom-up; odd nodes are paired with themselves."""
    levels = [list(leaves)]
    while len(levels[-1]) > 1:
        current = levels[-1]
        nxt: list[str] = []
        for i in range(0, len(current), 2):
            left = current[i]
            right = current[i + 1] if i + 1 < len(current) else current[i]
            nxt.append(sha256_hex(left + right))
        levels.append(nxt)
    return levels


def merkle_root(tx_ids: list[str]) -> str:
    """Merkle root of a list of transaction IDs (hex strings)."""
    if not tx_ids:
        return EMPTY_ROOT
    return _build_levels([sha256_hex(t) for t in tx_ids])[-1][0]


def merkle_proof(tx_ids: list[str], index: int) -> list[tuple[str, str]]:
    """Audit path for the transaction at ``index``.

    Returns a list of ``(sibling_hash, side)`` pairs where ``side`` is
    ``"left"`` or ``"right"`` describing where the sibling sits relative to the
    running hash.
    """
    if not tx_ids:
        raise ValueError("cannot build a proof over an empty transaction list")
    if not (0 <= index < len(tx_ids)):
        raise IndexError(f"index must lie in [0, {len(tx_ids)}), got {index}")
    levels = _build_levels([sha256_hex(t) for t in tx_ids])
    proof: list[tuple[str, str]] = []
    pos = index
    for level in levels[:-1]:
        if pos % 2 == 0:
            sibling = level[pos + 1] if pos + 1 < len(level) else level[pos]
            proof.append((sibling, "right"))
        else:
            proof.append((level[pos - 1], "left"))
        pos //= 2
    return proof


def verify_merkle_proof(tx_id: str, proof: list[tuple[str, str]], root: str) -> bool:
    """Check that ``tx_id`` is committed under ``root`` via ``proof``."""
    running = sha256_hex(tx_id)
    for sibling, side in proof:
        if side == "right":
            running = sha256_hex(running + sibling)
        elif side == "left":
            running = sha256_hex(sibling + running)
        else:
            raise ValueError(f"proof side must be 'left' or 'right', got {side!r}")
    return running == root
