"""Consensus: longest-chain rule and the fork-cost model.

FAIR-BFL avoids forks entirely (Assumptions 1 + 2 mean one block per round and
all miners stop as soon as a valid block arrives), so its consensus step is a
simple validate-and-append.  The vanilla-blockchain baseline, however, pays a
fork-resolution cost that grows with the number of miners — the paper observes
an "approximately exponential" delay growth in Figure 6b.  :class:`ForkModel`
captures that effect: the probability that two miners solve within one
propagation window of each other grows with the miner count, and each fork
costs extra merge time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.blockchain.block import Block
from repro.blockchain.chain import Blockchain
from repro.utils.validation import check_non_negative, check_probability

__all__ = ["LongestChainConsensus", "ForkModel"]


class LongestChainConsensus:
    """Validate-and-append consensus over replicated :class:`Blockchain` copies.

    All miner ledgers are kept in lock-step: :meth:`commit` validates the
    candidate block against each replica and appends it everywhere, raising if
    any replica disagrees (which would indicate a bug in the simulation since
    Assumption 1 synchronises all miners).
    """

    def __init__(self, replicas: dict[str, Blockchain]) -> None:
        if not replicas:
            raise ValueError("consensus requires at least one ledger replica")
        self.replicas = dict(replicas)

    def commit(self, block: Block) -> None:
        """Append ``block`` to every replica after validating against each."""
        errors = {
            miner_id: err
            for miner_id, chain in self.replicas.items()
            if (err := chain.validate_candidate(block)) is not None
        }
        if errors:
            detail = "; ".join(f"{mid}: {msg}" for mid, msg in errors.items())
            raise ValueError(f"block rejected by replicas: {detail}")
        for chain in self.replicas.values():
            chain.add_block(block)

    def heights(self) -> dict[str, int]:
        """Chain height per replica."""
        return {mid: chain.height for mid, chain in self.replicas.items()}

    def in_sync(self) -> bool:
        """True when all replicas have identical tip hashes."""
        tips = {chain.last_block.block_hash for chain in self.replicas.values()}
        return len(tips) == 1


@dataclass
class ForkModel:
    """Stochastic fork-occurrence and fork-cost model for PoW blockchains.

    Parameters
    ----------
    propagation_window:
        Seconds within which two competing solutions cause a fork.
    base_fork_probability:
        Per-pair probability that a second miner solves inside the window
        (calibrated constant; the pairwise structure makes the overall fork
        probability grow super-linearly in the miner count).
    merge_cost:
        Seconds of extra delay incurred to resolve one fork (orphaned work,
        re-broadcast, chain reorganisation).
    """

    propagation_window: float = 0.5
    base_fork_probability: float = 0.05
    merge_cost: float = 2.0

    def __post_init__(self) -> None:
        self.propagation_window = check_non_negative("propagation_window", self.propagation_window)
        self.base_fork_probability = check_probability(
            "base_fork_probability", self.base_fork_probability
        )
        self.merge_cost = check_non_negative("merge_cost", self.merge_cost)

    def fork_probability(self, num_miners: int) -> float:
        """Probability that at least one fork occurs in a mining competition.

        With ``m`` miners there are ``m - 1`` runners-up that can collide with
        the winner; each collides independently with probability
        ``base_fork_probability``, giving
        ``1 - (1 - p)**(m - 1)`` — convex and increasing in ``m``, matching the
        paper's observation that more miners sharply increase forking.
        """
        if num_miners <= 1:
            return 0.0
        return 1.0 - (1.0 - self.base_fork_probability) ** (num_miners - 1)

    def sample_collisions(self, rng: np.random.Generator, num_miners: int) -> int:
        """Sample how many runner-ups collide with the winner in one competition."""
        if num_miners <= 1:
            return 0
        return int(rng.binomial(num_miners - 1, self.base_fork_probability))

    def merge_schedule(self, collisions: int) -> list[float]:
        """Per-merge durations for ``collisions`` simultaneous forks.

        Merges are serialised reorganisations, one per colliding branch; each
        extra simultaneous branch compounds the per-merge effort slightly.
        The event kernel schedules these back to back, and their sum is the
        closed-form fork cost ``merge_cost · c · (1 + 0.25·(c − 1))``.
        """
        if collisions <= 0:
            return []
        per_merge = float(self.merge_cost * (1.0 + 0.25 * (collisions - 1)))
        return [per_merge] * collisions

    def sample_fork_delay(self, rng: np.random.Generator, num_miners: int) -> tuple[int, float]:
        """Sample ``(fork_count, extra_delay_seconds)`` for one mining competition.

        Every runner-up independently collides with the winner with probability
        ``base_fork_probability``; each collision costs one serialised merge
        from :meth:`merge_schedule`.
        """
        collisions = self.sample_collisions(rng, num_miners)
        return collisions, float(sum(self.merge_schedule(collisions)))
