"""Miner nodes.

A FAIR-BFL miner plays a dual role (paper Section 4.2): it is both a
blockchain bookkeeper (collects transactions, competes in proof of work,
validates blocks) and a stand-in for the FL server (aggregates the gradient
set, runs the incentive mechanism).  The :class:`Miner` class implements the
bookkeeping half; the aggregation/incentive logic is injected by the
orchestrator in :mod:`repro.core` so the same miner type serves both FAIR-BFL
and the vanilla baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.blockchain.block import Block
from repro.blockchain.chain import Blockchain
from repro.blockchain.pow import mine_block
from repro.blockchain.transaction import Transaction, TransactionType
from repro.crypto.keystore import KeyStore

__all__ = ["Miner"]


@dataclass
class Miner:
    """A miner with its ledger replica and per-round gradient set.

    Attributes
    ----------
    miner_id:
        Unique identifier (also its key-store entity ID).
    chain:
        This miner's ledger replica.
    keystore:
        Shared key registry used to verify incoming transaction signatures.
    verify_signatures:
        When True (default), gradient uploads with missing/invalid signatures
        are rejected, as in paper Figure 2.
    """

    miner_id: str
    chain: Blockchain
    keystore: KeyStore | None = None
    verify_signatures: bool = True
    gradient_set: dict[str, Transaction] = field(default_factory=dict)
    rejected_transactions: int = 0

    def reset_round(self) -> None:
        """Clear the per-round gradient set (called at the start of each round)."""
        self.gradient_set.clear()

    # -- Procedure II: receive uploads from associated clients ---------------
    def receive_upload(self, tx: Transaction) -> bool:
        """Accept a client's gradient-upload transaction into the local set.

        Returns True when the transaction is accepted (valid signature and not
        a duplicate); rejected transactions are counted.
        """
        if tx.tx_type is not TransactionType.GRADIENT_UPLOAD:
            self.rejected_transactions += 1
            return False
        if self.verify_signatures:
            if self.keystore is None or not tx.verify(self.keystore):
                self.rejected_transactions += 1
                return False
        if tx.tx_id in self.gradient_set:
            return False
        self.gradient_set[tx.tx_id] = tx
        return True

    # -- Procedure III: exchange gradient sets with other miners -------------
    def merge_gradient_set(self, other_set: dict[str, Transaction]) -> int:
        """Append transactions from another miner's set that are not already present.

        Mirrors Algorithm 1 lines 20-22: check whether each received
        transaction exists in the current set and append it if not.  Signature
        verification is repeated here because "miners will also use the RSA
        encryption algorithm to validate the transactions from other miners"
        (Section 4.3).  Returns the number of newly added transactions.
        """
        added = 0
        for tx_id, tx in other_set.items():
            if tx_id in self.gradient_set:
                continue
            if self.verify_signatures:
                if self.keystore is None or not tx.verify(self.keystore):
                    self.rejected_transactions += 1
                    continue
            self.gradient_set[tx_id] = tx
            added += 1
        return added

    def gradient_vectors(self) -> tuple[list[str], np.ndarray]:
        """Return (sender IDs, stacked gradient matrix) for the current set.

        The row order is sorted by sender ID so every miner derives the same
        matrix from the same set (needed for identical global updates across
        miners under Assumption 1).
        """
        txs = sorted(self.gradient_set.values(), key=lambda t: t.sender)
        senders = [tx.sender for tx in txs]
        if not txs:
            return senders, np.zeros((0, 0), dtype=np.float64)
        matrix = np.stack([np.asarray(tx.payload, dtype=np.float64) for tx in txs], axis=0)
        return senders, matrix

    # -- Procedure V: block creation ------------------------------------------
    def build_block(
        self,
        round_index: int,
        transactions: list[Transaction],
        *,
        timestamp: float = 0.0,
        difficulty: float = 1.0,
    ) -> Block:
        """Assemble the next block on top of this miner's chain tip."""
        tip = self.chain.last_block
        return Block.create(
            index=tip.index + 1,
            previous_hash=tip.block_hash,
            round_index=round_index,
            miner_id=self.miner_id,
            transactions=transactions,
            timestamp=timestamp,
            difficulty=difficulty,
        )

    def mine(self, block: Block, *, difficulty: float = 1.0, max_attempts: int = 1_000_000) -> Block:
        """Run the actual PoW nonce search on ``block`` and return it mined.

        Raises
        ------
        RuntimeError
            If no satisfying nonce is found within ``max_attempts`` (only
            possible if the difficulty is set unrealistically high for the
            attempt budget).
        """
        result = mine_block(block, difficulty=difficulty, max_attempts=max_attempts)
        if not result.success:
            raise RuntimeError(
                f"miner {self.miner_id} failed to find a nonce at difficulty "
                f"{difficulty} within {max_attempts} attempts"
            )
        return block

    def schedule_solve(
        self,
        kernel,
        solve_time: float,
        *,
        on_solve,
        priority: int = 0,
    ):
        """Register this miner's PoW solve as a discrete event on ``kernel``.

        ``on_solve`` is called with this miner when the solve event fires;
        the returned :class:`~repro.sim.events.ScheduledEvent` handle lets the
        competition cancel the runners-up once a winner's block propagates
        (Algorithm 1 lines 34-38: miners stop mining on receiving a valid
        block).
        """
        return kernel.schedule(
            solve_time,
            (lambda: on_solve(self)),
            name=f"{self.miner_id}:pow-solve",
            priority=priority,
        )

    def accept_block(self, block: Block) -> None:
        """Validate a received block and append it to the local replica.

        Mirrors Algorithm 1 lines 34-38: on receiving a block, verify the proof
        of work / links, stop local mining (implicit in the synchronous
        simulation), and append.
        """
        self.chain.add_block(block)

    @property
    def gradient_count(self) -> int:
        """Number of distinct gradient uploads currently held."""
        return len(self.gradient_set)
