"""The ledger: an append-only, validated chain of blocks.

Under Assumption 1 + 2, FAIR-BFL produces exactly one block per communication
round and never forks, so every miner's :class:`Blockchain` copy stays
identical.  The class still implements full validation (hash links, Merkle
roots, PoW targets, monotonically increasing rounds) so that tampering is
detectable, and fork bookkeeping so the vanilla-blockchain baseline can reuse
the same type.

Once the gossip substrate (:mod:`repro.net`) partitions the miner committee,
views *do* diverge: :class:`ForkChoice` is the deterministic rule every node
applies to pick between competing chains (longest chain, with a seeded hash
tie-break for equal lengths), and :meth:`Blockchain.reorg_to` swaps a losing
view onto the winning chain after validating it in full.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.blockchain.block import Block, GENESIS_PREVIOUS_HASH
from repro.crypto.hashing import difficulty_to_target, meets_target

__all__ = ["Blockchain", "BlockValidationError", "ForkChoice"]


class BlockValidationError(ValueError):
    """Raised when an appended block fails validation."""


@dataclass(frozen=True)
class ForkChoice:
    """Deterministic longest-chain fork choice with a seeded hash tie-break.

    The longer chain always wins.  Equal-length forks are resolved by
    comparing the SHA-256 digest of ``salt || tip hash``: the chain whose
    salted tip digest is lexicographically smaller wins.  Every node that
    shares the same ``salt`` (the experiment seed) therefore picks the same
    winner from the same candidate set — no dependence on message arrival
    order, dict iteration, or node identity — which is what lets divergent
    views reconverge bit-deterministically when a partition heals.
    """

    salt: int = 0

    def tie_break(self, tip_hash: str) -> str:
        """The salted digest equal-length forks are compared by (lower wins)."""
        payload = f"fork-choice|{int(self.salt)}|{tip_hash}".encode("utf-8")
        return hashlib.sha256(payload).hexdigest()

    def prefer(self, current: "Blockchain", candidate: "Blockchain") -> bool:
        """True when ``candidate`` strictly beats ``current``."""
        if not candidate.blocks:
            return False
        if not current.blocks:
            return True
        if candidate.height != current.height:
            return candidate.height > current.height
        current_tip = current.last_block.block_hash
        candidate_tip = candidate.last_block.block_hash
        if candidate_tip == current_tip:
            return False
        return self.tie_break(candidate_tip) < self.tie_break(current_tip)

    def best(self, chains: Iterable["Blockchain"]) -> "Blockchain":
        """The winning chain among ``chains`` (raises on an empty iterable)."""
        winner: Blockchain | None = None
        for chain in chains:
            if winner is None or self.prefer(winner, chain):
                winner = chain
        if winner is None:
            raise ValueError("fork choice needs at least one candidate chain")
        return winner


@dataclass
class Blockchain:
    """A validated list of blocks starting from a genesis block.

    Parameters
    ----------
    enforce_pow:
        When True, appended non-genesis blocks must satisfy their stated
        difficulty target.  FAIR-BFL simulations that use the stochastic
        timing model (rather than actually grinding nonces) set this to False.
    """

    enforce_pow: bool = True
    blocks: list[Block] = field(default_factory=list)
    fork_events: int = 0

    def __post_init__(self) -> None:
        if self.blocks:
            self._validate_full_chain(self.blocks)

    # -- basic accessors ----------------------------------------------------
    @property
    def height(self) -> int:
        """Number of blocks in the chain."""
        return len(self.blocks)

    @property
    def last_block(self) -> Block:
        """The chain tip.

        Raises
        ------
        IndexError
            If the chain is empty (no genesis yet).
        """
        if not self.blocks:
            raise IndexError("blockchain is empty; add a genesis block first")
        return self.blocks[-1]

    def block_at(self, index: int) -> Block:
        """Block at height ``index``."""
        return self.blocks[index]

    def block_for_round(self, round_index: int) -> Block | None:
        """Return the block finalising communication round ``round_index``, if any."""
        for block in reversed(self.blocks):
            if block.round_index == round_index:
                return block
        return None

    def latest_global_update(self) -> np.ndarray | None:
        """The most recent global gradient recorded on-chain (Procedure I reads this)."""
        for block in reversed(self.blocks):
            update = block.global_update()
            if update is not None:
                return update
        return None

    def total_rewards_by_client(self) -> dict[str, float]:
        """Accumulated reward per client across all blocks."""
        totals: dict[str, float] = {}
        for block in self.blocks:
            for record in block.reward_records():
                client = str(record.get("client"))
                totals[client] = totals.get(client, 0.0) + float(record.get("reward", 0.0))
        return totals

    # -- validation / mutation ----------------------------------------------
    def add_genesis(self, block: Block) -> Block:
        """Install the genesis block (index 0, null previous hash)."""
        if self.blocks:
            raise BlockValidationError("genesis block already present")
        if block.index != 0 or block.header.previous_hash != GENESIS_PREVIOUS_HASH:
            raise BlockValidationError("invalid genesis block (index/previous hash)")
        if not block.validate_merkle_root():
            raise BlockValidationError("genesis block has an inconsistent Merkle root")
        self.blocks.append(block)
        return block

    def add_block(self, block: Block) -> Block:
        """Validate and append ``block`` to the tip."""
        error = self.validate_candidate(block)
        if error is not None:
            raise BlockValidationError(error)
        self.blocks.append(block)
        return block

    def validate_candidate(self, block: Block) -> str | None:
        """Return None if ``block`` may extend the tip, else a description of the problem."""
        if not self.blocks:
            return "chain has no genesis block"
        tip = self.last_block
        if block.index != tip.index + 1:
            return f"expected block index {tip.index + 1}, got {block.index}"
        if block.header.previous_hash != tip.block_hash:
            return "previous-hash link does not match the chain tip"
        if not block.validate_merkle_root():
            return "Merkle root does not match the block body"
        if self.enforce_pow:
            target = difficulty_to_target(block.header.difficulty)
            if not meets_target(block.block_hash, target):
                return "block hash does not satisfy its difficulty target"
        return None

    def is_valid(self) -> bool:
        """Re-validate the whole chain (used after deserialisation or tampering tests)."""
        try:
            self._validate_full_chain(self.blocks)
        except BlockValidationError:
            return False
        return True

    def _validate_full_chain(self, blocks: list[Block]) -> None:
        if not blocks:
            return
        first = blocks[0]
        if first.index != 0 or first.header.previous_hash != GENESIS_PREVIOUS_HASH:
            raise BlockValidationError("invalid genesis block")
        if not first.validate_merkle_root():
            raise BlockValidationError("genesis Merkle root mismatch")
        for parent, child in zip(blocks, blocks[1:]):
            if child.index != parent.index + 1:
                raise BlockValidationError(f"non-contiguous block index at height {child.index}")
            if child.header.previous_hash != parent.block_hash:
                raise BlockValidationError(f"broken hash link at height {child.index}")
            if not child.validate_merkle_root():
                raise BlockValidationError(f"Merkle root mismatch at height {child.index}")
            if self.enforce_pow:
                target = difficulty_to_target(child.header.difficulty)
                if not meets_target(child.block_hash, target):
                    raise BlockValidationError(f"insufficient proof of work at height {child.index}")

    def has_block(self, block_hash: str) -> bool:
        """Whether a block with this hash is part of the chain.

        Chains are one block per round, so the linear scan is bounded by the
        round count; per-node gossip handlers use this for duplicate detection.
        """
        return any(b.block_hash == block_hash for b in self.blocks)

    def reorg_to(self, blocks: Sequence[Block]) -> tuple[int, int]:
        """Replace this chain with the (winning) candidate chain ``blocks``.

        The candidate is validated in full *before* anything is discarded —
        genesis shape, hash links, Merkle roots, and (when ``enforce_pow``)
        difficulty targets — and must share this chain's genesis block, so a
        node can never be reorged onto a different ledger.  Returns
        ``(rolled_back, applied)``: how many tip blocks were discarded and how
        many candidate blocks replaced or extended them past the common
        prefix.  A reorg that actually discards blocks counts one fork event.

        Raises
        ------
        BlockValidationError
            If the candidate chain is invalid or does not share the genesis.
        """
        candidate = list(blocks)
        if not candidate:
            raise BlockValidationError("cannot reorg to an empty chain")
        self._validate_full_chain(candidate)
        if self.blocks and candidate[0].block_hash != self.blocks[0].block_hash:
            raise BlockValidationError("candidate chain has a different genesis block")
        common = 0
        for ours, theirs in zip(self.blocks, candidate):
            if ours.block_hash != theirs.block_hash:
                break
            common += 1
        rolled_back = len(self.blocks) - common
        applied = len(candidate) - common
        self.blocks = candidate
        if rolled_back:
            self.fork_events += 1
        return rolled_back, applied

    def record_fork(self) -> None:
        """Count a fork event (vanilla-blockchain baseline bookkeeping)."""
        self.fork_events += 1

    def copy(self) -> "Blockchain":
        """Shallow copy sharing block objects (miners' replicated ledgers)."""
        clone = Blockchain(enforce_pow=self.enforce_pow)
        clone.blocks = list(self.blocks)
        clone.fork_events = self.fork_events
        return clone

    def __len__(self) -> int:
        return len(self.blocks)
