"""Gradient-forging attacks.

Each attack modifies the uploaded parameter vector after honest local training.
The paper does not commit to a specific forgery; we implement the four standard
model-poisoning primitives from the robust-FL literature, with
:class:`SignFlipAttack` as the default used for Table 2 (it is the archetypal
"modify the actual local gradients to skew the global model" attack).

All attacks operate on the *update direction* ``w_i - w_global`` when the
global parameters are available, and on the raw vector otherwise, so that a
forged upload points away from the honest consensus direction — which is what
the clustering in Algorithm 2 is designed to catch.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack
from repro.fl.client import ClientUpdate
from repro.utils.validation import check_non_negative, check_positive

__all__ = [
    "ATTACKS",
    "SignFlipAttack",
    "ScalingAttack",
    "GaussianNoiseAttack",
    "ZeroGradientAttack",
    "MixedAttack",
    "make_attack",
]

#: Attack names accepted by :func:`make_attack` — the authoritative axis the
#: scenario layer, the CLI, and the docs-coverage checker all share.
ATTACKS = (
    "sign_flip",
    "scaling",
    "gaussian_noise",
    "zero_gradient",
    "label_flip",
    "mixed",
    "none",
)


def _direction(update: ClientUpdate, global_parameters: np.ndarray | None) -> tuple[np.ndarray, np.ndarray]:
    """Split the upload into (reference, direction) for direction-space attacks."""
    w = np.asarray(update.parameters, dtype=np.float64)
    if global_parameters is None:
        return np.zeros_like(w), w
    g = np.asarray(global_parameters, dtype=np.float64)
    return g, w - g


class SignFlipAttack(Attack):
    """Reverse (and optionally amplify) the client's update direction."""

    name = "sign_flip"

    def __init__(self, scale: float = 1.0) -> None:
        self.scale = check_positive("scale", scale)

    def apply(
        self,
        update: ClientUpdate,
        rng: np.random.Generator,
        *,
        global_parameters: np.ndarray | None = None,
    ) -> ClientUpdate:
        ref, direction = _direction(update, global_parameters)
        forged = update.copy_with_parameters(ref - self.scale * direction)
        return self._mark(forged)


class ScalingAttack(Attack):
    """Multiply the update direction by a large factor (model-replacement style)."""

    name = "scaling"

    def __init__(self, factor: float = 10.0) -> None:
        self.factor = check_positive("factor", factor)

    def apply(
        self,
        update: ClientUpdate,
        rng: np.random.Generator,
        *,
        global_parameters: np.ndarray | None = None,
    ) -> ClientUpdate:
        ref, direction = _direction(update, global_parameters)
        forged = update.copy_with_parameters(ref + self.factor * direction)
        return self._mark(forged)


class GaussianNoiseAttack(Attack):
    """Replace the update direction with isotropic Gaussian noise."""

    name = "gaussian_noise"

    def __init__(self, std: float = 1.0) -> None:
        self.std = check_non_negative("std", std)

    def apply(
        self,
        update: ClientUpdate,
        rng: np.random.Generator,
        *,
        global_parameters: np.ndarray | None = None,
    ) -> ClientUpdate:
        ref, direction = _direction(update, global_parameters)
        noise = rng.normal(0.0, self.std if self.std > 0 else 1.0, size=direction.shape)
        # Scale the noise to the honest direction's magnitude so the forged
        # vector is plausible in norm but wrong in direction.
        norm = np.linalg.norm(direction)
        noise_norm = np.linalg.norm(noise)
        if norm > 0 and noise_norm > 0:
            noise = noise * (norm / noise_norm)
        forged = update.copy_with_parameters(ref + noise)
        return self._mark(forged)


class ZeroGradientAttack(Attack):
    """Upload an unchanged model (free-riding: zero update direction)."""

    name = "zero_gradient"

    def apply(
        self,
        update: ClientUpdate,
        rng: np.random.Generator,
        *,
        global_parameters: np.ndarray | None = None,
    ) -> ClientUpdate:
        ref, _direction_vec = _direction(update, global_parameters)
        if global_parameters is None:
            forged = update.copy_with_parameters(np.zeros_like(update.parameters))
        else:
            forged = update.copy_with_parameters(ref.copy())
        return self._mark(forged)


class MixedAttack(Attack):
    """A heterogeneous adversary: each forgery draws one of the base primitives.

    Every malicious upload independently samples (from the caller's RNG, so
    the choice sequence is deterministic per seed and identical across
    executor backends) one of sign-flip, scaling, Gaussian-noise, or
    zero-gradient — the setting where no single-attack-tuned defense is
    automatically well-sized, which is what the hyper-parameter search bench
    stresses.
    """

    name = "mixed"

    def __init__(self, attacks: tuple[Attack, ...] | None = None) -> None:
        self.attacks: tuple[Attack, ...] = tuple(attacks) if attacks else (
            SignFlipAttack(),
            ScalingAttack(),
            GaussianNoiseAttack(),
            ZeroGradientAttack(),
        )
        if not self.attacks:
            raise ValueError("MixedAttack needs at least one sub-attack")

    def apply(
        self,
        update: ClientUpdate,
        rng: np.random.Generator,
        *,
        global_parameters: np.ndarray | None = None,
    ) -> ClientUpdate:
        chosen = self.attacks[int(rng.integers(len(self.attacks)))]
        forged = chosen.apply(update, rng, global_parameters=global_parameters)
        # Re-mark under the mixed name but keep the primitive for diagnostics.
        forged.metadata["attack_primitive"] = chosen.name
        return self._mark(forged)


def make_attack(name: str, **kwargs) -> Attack:
    """Factory resolving an attack by name (see :data:`ATTACKS`).

    ``"label_flip"`` resolves to the direction-space approximation of
    :class:`~repro.attacks.label_flip.LabelFlipAttack` (imported lazily — the
    retraining variant needs client objects this factory does not have).
    """
    from repro.attacks.base import NoAttack

    key = name.strip().lower()
    if key == "sign_flip":
        return SignFlipAttack(**kwargs)
    if key == "scaling":
        return ScalingAttack(**kwargs)
    if key == "gaussian_noise":
        return GaussianNoiseAttack(**kwargs)
    if key == "zero_gradient":
        return ZeroGradientAttack(**kwargs)
    if key == "label_flip":
        from repro.attacks.label_flip import LabelFlipAttack

        return LabelFlipAttack(**kwargs)
    if key == "mixed":
        return MixedAttack(**kwargs)
    if key == "none":
        return NoAttack()
    raise ValueError(
        f"unknown attack {name!r}; expected one of: " + ", ".join(ATTACKS)
    )
