"""Attack interface.

An attack transforms a client's honest :class:`~repro.fl.client.ClientUpdate`
into the forged update the malicious client actually uploads.  Attacks are
applied *after* local training and *before* upload, which is where the paper's
threat model places them ("malicious clients may upload fake local gradients").
"""

from __future__ import annotations

import numpy as np

from repro.fl.client import ClientUpdate

__all__ = ["Attack", "NoAttack"]


class Attack:
    """Base class for gradient-forging attacks."""

    name: str = "attack"

    def apply(
        self,
        update: ClientUpdate,
        rng: np.random.Generator,
        *,
        global_parameters: np.ndarray | None = None,
    ) -> ClientUpdate:
        """Return the forged update a malicious client uploads.

        Parameters
        ----------
        update:
            The honest update produced by local training.
        rng:
            Randomness source for stochastic attacks.
        global_parameters:
            The round's starting global parameters (some attacks forge
            relative to them rather than to the honest update).
        """
        raise NotImplementedError

    def _mark(self, forged: ClientUpdate) -> ClientUpdate:
        """Tag the update as malicious and note the attack used."""
        forged.is_malicious = True
        forged.metadata["attack"] = self.name
        return forged


class NoAttack(Attack):
    """Identity attack: the client stays honest (control condition)."""

    name = "none"

    def apply(
        self,
        update: ClientUpdate,
        rng: np.random.Generator,
        *,
        global_parameters: np.ndarray | None = None,
    ) -> ClientUpdate:
        return update
