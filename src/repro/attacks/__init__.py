"""Attack models.

Section 5.4 of the paper evaluates security by designating 1-3 random clients
per round as malicious nodes that "modify the actual local gradients to skew
the global model".  This package provides:

* :mod:`repro.attacks.gradient_attacks` — concrete gradient-forging attacks
  (sign flipping, scaling, additive Gaussian noise, zeroing);
* :mod:`repro.attacks.label_flip` — data poisoning through label flipping
  (the attack happens *before* training, so the forged gradient is a real
  gradient of poisoned data);
* :mod:`repro.attacks.scheduler` — per-round random attacker designation
  reproducing Table 2's protocol, plus detection-rate accounting.
"""

from repro.attacks.base import Attack, NoAttack
from repro.attacks.gradient_attacks import (
    ATTACKS,
    GaussianNoiseAttack,
    ScalingAttack,
    SignFlipAttack,
    ZeroGradientAttack,
    make_attack,
)
from repro.attacks.label_flip import LabelFlipAttack
from repro.attacks.scheduler import AttackRoundLog, AttackScheduler, detection_rate

__all__ = [
    "ATTACKS",
    "Attack",
    "NoAttack",
    "GaussianNoiseAttack",
    "ScalingAttack",
    "SignFlipAttack",
    "ZeroGradientAttack",
    "make_attack",
    "LabelFlipAttack",
    "AttackRoundLog",
    "AttackScheduler",
    "detection_rate",
]
