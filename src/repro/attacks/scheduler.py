"""Attacker designation and detection-rate accounting (Table 2's protocol).

"There are 10 indexed clients, and in each communication round, randomly
designate 1 to 3 clients as malicious nodes, and 10 rounds are executed in
total" (Section 5.4).  The :class:`AttackScheduler` reproduces that protocol
for any population size; :func:`detection_rate` computes the per-round and
average detection rates exactly as the paper defines them (fraction of the
round's attackers that appear in the round's drop list).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attacks.base import Attack
from repro.attacks.gradient_attacks import SignFlipAttack
from repro.utils.validation import check_probability

__all__ = ["AttackScheduler", "AttackRoundLog", "detection_rate"]


@dataclass
class AttackRoundLog:
    """Per-round record of who attacked and who was caught."""

    round_index: int
    attacker_ids: list[int]
    dropped_ids: list[int]

    @property
    def detected(self) -> list[int]:
        """Attackers that appear in the drop list."""
        dropped = set(self.dropped_ids)
        return [a for a in self.attacker_ids if a in dropped]

    @property
    def detection_rate(self) -> float:
        """Fraction of this round's attackers that were dropped (1.0 when no attackers)."""
        if not self.attacker_ids:
            return 1.0
        return len(self.detected) / len(self.attacker_ids)

    @property
    def false_positives(self) -> list[int]:
        """Honest clients that were dropped this round."""
        attackers = set(self.attacker_ids)
        return [d for d in self.dropped_ids if d not in attackers]


def detection_rate(logs: list[AttackRoundLog]) -> float:
    """Average of the per-round detection rates over rounds that had attackers."""
    rates = [log.detection_rate for log in logs if log.attacker_ids]
    return float(np.mean(rates)) if rates else 1.0


@dataclass
class AttackScheduler:
    """Randomly designates attackers each round and applies a forging attack.

    Parameters
    ----------
    attack:
        The gradient-forging attack malicious clients apply (default: sign
        flipping).
    min_attackers, max_attackers:
        Bounds of the per-round attacker count (paper: 1 to 3).
    probability:
        Probability that the round contains any attackers at all (1.0
        reproduces Table 2; lower values model sporadic adversaries).
    active_from, active_until:
        Activation window in **kernel simulated seconds**.  Round timing is
        event-driven (the discrete-event kernel advances the trainer's
        ``SimulatedClock``), so attack activation keys off that same clock
        rather than a wall-clock or a raw round index: designation outside
        ``[active_from, active_until)`` yields no attackers.  The defaults
        (``0.0``, ``None``) keep the adversary always active, reproducing
        Table 2's protocol.
    """

    attack: Attack = field(default_factory=SignFlipAttack)
    min_attackers: int = 1
    max_attackers: int = 3
    probability: float = 1.0
    active_from: float = 0.0
    active_until: float | None = None
    logs: list[AttackRoundLog] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.min_attackers < 0:
            raise ValueError(f"min_attackers must be >= 0, got {self.min_attackers}")
        if self.max_attackers < self.min_attackers:
            raise ValueError(
                f"max_attackers ({self.max_attackers}) must be >= min_attackers "
                f"({self.min_attackers})"
            )
        check_probability("probability", self.probability)
        if self.active_from < 0.0:
            raise ValueError(f"active_from must be >= 0, got {self.active_from}")
        if self.active_until is not None and self.active_until <= self.active_from:
            raise ValueError(
                f"active_until ({self.active_until}) must exceed active_from "
                f"({self.active_from})"
            )

    def is_active(self, sim_time: float | None) -> bool:
        """Whether the adversary is active at kernel time ``sim_time``.

        ``None`` (no simulated clock available) means always active, which is
        the pre-event-kernel behaviour.
        """
        if sim_time is None:
            return True
        if sim_time < self.active_from:
            return False
        return self.active_until is None or sim_time < self.active_until

    def designate(
        self,
        participants: list[int] | np.ndarray,
        rng: np.random.Generator,
        *,
        sim_time: float | None = None,
    ) -> list[int]:
        """Pick this round's attackers from the participating clients.

        ``sim_time`` is the kernel's simulated clock at the start of the
        round; outside the activation window no attackers are designated (and
        no RNG draws are consumed, so enabling a window does not perturb the
        attacker sequence of later active rounds).
        """
        pool = [int(c) for c in np.asarray(participants).ravel()]
        if not pool or self.max_attackers == 0:
            return []
        if not self.is_active(sim_time):
            return []
        if rng.random() > self.probability:
            return []
        count = int(rng.integers(self.min_attackers, self.max_attackers + 1))
        count = min(count, len(pool))
        if count == 0:
            return []
        chosen = rng.choice(len(pool), size=count, replace=False)
        return sorted(pool[int(i)] for i in chosen)

    def forge(self, update, rng: np.random.Generator, *, global_parameters=None):
        """Apply the configured attack to one honest update."""
        return self.attack.apply(update, rng, global_parameters=global_parameters)

    def record_round(
        self, round_index: int, attacker_ids: list[int], dropped_ids: list[int]
    ) -> AttackRoundLog:
        """Log the round's attackers vs the incentive mechanism's drop list."""
        log = AttackRoundLog(
            round_index=int(round_index),
            attacker_ids=sorted(int(a) for a in attacker_ids),
            dropped_ids=sorted(int(d) for d in dropped_ids),
        )
        self.logs.append(log)
        return log

    def average_detection_rate(self) -> float:
        """The paper's 'Average Detection Rate' across all logged rounds."""
        return detection_rate(self.logs)
