"""Attacker designation and detection-rate accounting (Table 2's protocol).

"There are 10 indexed clients, and in each communication round, randomly
designate 1 to 3 clients as malicious nodes, and 10 rounds are executed in
total" (Section 5.4).  The :class:`AttackScheduler` reproduces that protocol
for any population size; :func:`detection_rate` computes the per-round and
average detection rates exactly as the paper defines them (fraction of the
round's attackers that appear in the round's drop list).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attacks.base import Attack
from repro.attacks.gradient_attacks import SignFlipAttack
from repro.utils.validation import check_probability

__all__ = ["AttackScheduler", "AttackRoundLog", "detection_rate"]


@dataclass
class AttackRoundLog:
    """Per-round record of who attacked and who was caught."""

    round_index: int
    attacker_ids: list[int]
    dropped_ids: list[int]

    @property
    def detected(self) -> list[int]:
        """Attackers that appear in the drop list."""
        dropped = set(self.dropped_ids)
        return [a for a in self.attacker_ids if a in dropped]

    @property
    def detection_rate(self) -> float:
        """Fraction of this round's attackers that were dropped (1.0 when no attackers)."""
        if not self.attacker_ids:
            return 1.0
        return len(self.detected) / len(self.attacker_ids)

    @property
    def false_positives(self) -> list[int]:
        """Honest clients that were dropped this round."""
        attackers = set(self.attacker_ids)
        return [d for d in self.dropped_ids if d not in attackers]


def detection_rate(logs: list[AttackRoundLog]) -> float:
    """Average of the per-round detection rates over rounds that had attackers."""
    rates = [log.detection_rate for log in logs if log.attacker_ids]
    return float(np.mean(rates)) if rates else 1.0


@dataclass
class AttackScheduler:
    """Randomly designates attackers each round and applies a forging attack.

    Parameters
    ----------
    attack:
        The gradient-forging attack malicious clients apply (default: sign
        flipping).
    min_attackers, max_attackers:
        Bounds of the per-round attacker count (paper: 1 to 3).
    probability:
        Probability that the round contains any attackers at all (1.0
        reproduces Table 2; lower values model sporadic adversaries).
    """

    attack: Attack = field(default_factory=SignFlipAttack)
    min_attackers: int = 1
    max_attackers: int = 3
    probability: float = 1.0
    logs: list[AttackRoundLog] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.min_attackers < 0:
            raise ValueError(f"min_attackers must be >= 0, got {self.min_attackers}")
        if self.max_attackers < self.min_attackers:
            raise ValueError(
                f"max_attackers ({self.max_attackers}) must be >= min_attackers "
                f"({self.min_attackers})"
            )
        check_probability("probability", self.probability)

    def designate(
        self, participants: list[int] | np.ndarray, rng: np.random.Generator
    ) -> list[int]:
        """Pick this round's attackers from the participating clients."""
        pool = [int(c) for c in np.asarray(participants).ravel()]
        if not pool or self.max_attackers == 0:
            return []
        if rng.random() > self.probability:
            return []
        count = int(rng.integers(self.min_attackers, self.max_attackers + 1))
        count = min(count, len(pool))
        if count == 0:
            return []
        chosen = rng.choice(len(pool), size=count, replace=False)
        return sorted(pool[int(i)] for i in chosen)

    def forge(self, update, rng: np.random.Generator, *, global_parameters=None):
        """Apply the configured attack to one honest update."""
        return self.attack.apply(update, rng, global_parameters=global_parameters)

    def record_round(
        self, round_index: int, attacker_ids: list[int], dropped_ids: list[int]
    ) -> AttackRoundLog:
        """Log the round's attackers vs the incentive mechanism's drop list."""
        log = AttackRoundLog(
            round_index=int(round_index),
            attacker_ids=sorted(int(a) for a in attacker_ids),
            dropped_ids=sorted(int(d) for d in dropped_ids),
        )
        self.logs.append(log)
        return log

    def average_detection_rate(self) -> float:
        """The paper's 'Average Detection Rate' across all logged rounds."""
        return detection_rate(self.logs)
