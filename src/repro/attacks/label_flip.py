"""Label-flipping data poisoning.

Unlike the direction-space attacks, label flipping poisons the *data* before
training: the malicious client trains honestly on dishonest labels, producing
a gradient that is statistically real but semantically wrong.  This is the
harder case for clustering-based detection and is exercised by the extended
security tests/benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack
from repro.datasets.federated import ClientDataset
from repro.fl.client import ClientUpdate, FLClient, LocalTrainingConfig
from repro.utils.validation import check_probability

__all__ = ["LabelFlipAttack"]


class LabelFlipAttack(Attack):
    """Re-train on a label-permuted copy of the client's shard and upload that.

    Parameters
    ----------
    flip_fraction:
        Fraction of the local samples whose labels are rotated by one class
        (``label -> (label + 1) mod num_classes``).
    num_classes:
        Number of classes in the task.
    """

    name = "label_flip"

    def __init__(self, flip_fraction: float = 1.0, num_classes: int = 10) -> None:
        self.flip_fraction = check_probability("flip_fraction", flip_fraction)
        if num_classes < 2:
            raise ValueError(f"num_classes must be >= 2, got {num_classes}")
        self.num_classes = int(num_classes)

    def poison_labels(self, labels: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return a copy of ``labels`` with a fraction rotated to the next class."""
        poisoned = np.asarray(labels, dtype=np.int64).copy()
        n = poisoned.shape[0]
        k = int(round(self.flip_fraction * n))
        if k == 0:
            return poisoned
        idx = rng.choice(n, size=k, replace=False)
        poisoned[idx] = (poisoned[idx] + 1) % self.num_classes
        return poisoned

    def apply_with_retraining(
        self,
        client: FLClient,
        global_parameters: np.ndarray,
        config: LocalTrainingConfig,
        rng: np.random.Generator,
    ) -> ClientUpdate:
        """Produce the poisoned update by retraining on flipped labels.

        A temporary poisoned shard is built, trained on with the same local
        configuration, and the result is marked malicious.  The client's real
        shard is untouched.
        """
        poisoned_shard = ClientDataset(
            client_id=client.dataset.client_id,
            images=client.dataset.images,
            labels=self.poison_labels(client.dataset.labels, rng),
            val_images=client.dataset.val_images,
            val_labels=client.dataset.val_labels,
        )
        poisoned_client = FLClient(poisoned_shard, lambda: client.model, rng)
        forged = poisoned_client.local_update(global_parameters, config)
        forged.client_id = client.client_id
        return self._mark(forged)

    def apply(
        self,
        update: ClientUpdate,
        rng: np.random.Generator,
        *,
        global_parameters: np.ndarray | None = None,
    ) -> ClientUpdate:
        """Direction-space approximation used when retraining is not possible.

        Without access to the client object, the attack approximates the effect
        of training on flipped labels by rotating the update direction partway
        toward its negation (a flipped-label gradient correlates negatively
        with the honest one but is not its exact mirror image).
        """
        if global_parameters is None:
            forged = update.copy_with_parameters(-np.asarray(update.parameters))
            return self._mark(forged)
        g = np.asarray(global_parameters, dtype=np.float64)
        direction = np.asarray(update.parameters, dtype=np.float64) - g
        mixed = -0.5 * direction + 0.5 * rng.normal(0.0, 1.0, size=direction.shape) * (
            np.linalg.norm(direction) / max(1.0, np.sqrt(direction.size))
        )
        forged = update.copy_with_parameters(g + mixed)
        return self._mark(forged)
