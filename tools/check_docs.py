"""Docs-freshness checker.

Fails (exit code 1) when the documentation has drifted from the code:

1. a public module under ``src/repro`` lacks a module docstring;
2. ``README.md`` references a ``benchmarks/bench_*.py`` file that does not
   exist, or a benchmark file exists that the README's figure/table map does
   not mention;
3. ``docs/scenarios.md`` is missing a ``ScenarioSpec`` field (the scenario
   reference must cover every field, with its default);
4. an example scenario file under ``scenarios/`` fails to load/validate.

Run from the repository root:

.. code-block:: bash

   PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_ROOT = REPO_ROOT / "src"


def _ensure_importable() -> None:
    if str(SRC_ROOT) not in sys.path:
        sys.path.insert(0, str(SRC_ROOT))


def check_module_docstrings() -> list[str]:
    """Every public module under src/repro must open with a docstring."""
    problems = []
    for path in sorted(SRC_ROOT.glob("repro/**/*.py")):
        rel = path.relative_to(REPO_ROOT)
        if path.name != "__init__.py" and path.name.startswith("_"):
            continue  # private helper modules are exempt
        tree = ast.parse(path.read_text(encoding="utf-8"))
        if ast.get_docstring(tree) is None:
            problems.append(f"{rel}: public module lacks a module docstring")
    return problems


def check_readme_benchmarks() -> list[str]:
    """README's benchmark table and benchmarks/ must reference each other."""
    problems = []
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    referenced = set(re.findall(r"benchmarks/(bench_\w+\.py)", readme))
    existing = {p.name for p in (REPO_ROOT / "benchmarks").glob("bench_*.py")}
    for name in sorted(referenced - existing):
        problems.append(f"README.md references nonexistent benchmark file benchmarks/{name}")
    for name in sorted(existing - referenced):
        problems.append(f"benchmarks/{name} is not mentioned in README.md's benchmark map")
    return problems


def check_scenario_reference() -> list[str]:
    """docs/scenarios.md must document every ScenarioSpec field."""
    _ensure_importable()
    from repro.runner.scenario import ScenarioSpec

    problems = []
    doc = (REPO_ROOT / "docs" / "scenarios.md").read_text(encoding="utf-8")
    for field_name in ScenarioSpec.field_names():
        if not re.search(rf"`{re.escape(field_name)}`", doc):
            problems.append(f"docs/scenarios.md does not document ScenarioSpec field {field_name!r}")
    return problems


def check_example_scenarios() -> list[str]:
    """Every example scenario file must load and validate."""
    _ensure_importable()
    from repro.runner.scenario import ScenarioError, load_scenario_file

    problems = []
    scenario_dir = REPO_ROOT / "scenarios"
    files = sorted(
        list(scenario_dir.glob("*.json")) + list(scenario_dir.glob("*.toml"))
    )
    if not files:
        problems.append("scenarios/ contains no example scenario files")
    for path in files:
        try:
            specs = load_scenario_file(path)
        except ScenarioError as exc:
            problems.append(f"{path.relative_to(REPO_ROOT)}: {exc}")
            continue
        if not specs:
            problems.append(f"{path.relative_to(REPO_ROOT)}: expands to zero scenarios")
    return problems


def main() -> int:
    problems = (
        check_module_docstrings()
        + check_readme_benchmarks()
        + check_scenario_reference()
        + check_example_scenarios()
    )
    for problem in problems:
        print(f"docs-check: {problem}", file=sys.stderr)
    if problems:
        print(f"docs-check: {len(problems)} problem(s) found", file=sys.stderr)
        return 1
    print("docs-check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
