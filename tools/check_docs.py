"""Docs-freshness checker.

Fails (exit code 1) when the documentation has drifted from the code:

1. a public module under ``src/repro`` lacks a module docstring;
2. ``README.md`` references a ``benchmarks/bench_*.py`` file that does not
   exist, or a benchmark file exists that the README's figure/table map does
   not mention;
3. ``docs/scenarios.md`` is missing a ``ScenarioSpec`` field (the scenario
   reference must cover every field, with its default);
4. an example scenario file under ``scenarios/`` fails to load/validate;
5. a configuration axis value (a round mode, an attack name, a defense name)
   is missing from the docs that must catalogue it (``docs/scenarios.md``
   and ``docs/threat_model.md``) — the axis lists are imported from the
   code (``ROUND_MODES``, ``ATTACKS``, ``DEFENSES``), so adding a value
   without documenting it fails this check;
6. a *registered system* name (``repro.systems.system_names()``) is missing
   from ``docs/scenarios.md`` or the public-API reference ``docs/api.md`` —
   registering a system without documenting it fails this check;
7. a CLI flag accepted by ``repro.cli`` (any subcommand) does not appear in
   the ``docs/cli_help.txt`` snapshot;
8. a benchmark file ``benchmarks/bench_*.py`` is missing from the benchmark
   catalogue ``docs/benchmarks.md`` (or the catalogue names a bench that no
   longer exists) — every bench must document which paper figure/table it
   reproduces;
9. a name in ``repro.api.__all__`` is missing from ``docs/api.md`` or lacks
   a docstring — the stable facade must stay fully referenced and
   self-describing;
10. a ``repro`` CLI subcommand is mentioned in neither the README quickstart
    nor ``docs/api.md`` — every verb the parser accepts must have at least
    one discoverable usage reference (``repro <verb>`` or
    ``repro.cli <verb>``);
11. an HTTP endpoint declared in ``repro.serve.protocol.ENDPOINTS`` is
    missing from the service reference ``docs/serve.md`` — the endpoint
    table is imported from the code, so adding a route without documenting
    its method and path fails this check;
12. a network-substrate axis value (a topology from ``repro.net.TOPOLOGIES``,
    or the ``partition`` / ``churn`` axis names) is missing from
    ``docs/scenarios.md`` or ``docs/threat_model.md`` — the gossip layer's
    scenario axes must stay catalogued in both the field reference and the
    threat guide.

Run from the repository root:

.. code-block:: bash

   PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_ROOT = REPO_ROOT / "src"


def _ensure_importable() -> None:
    if str(SRC_ROOT) not in sys.path:
        sys.path.insert(0, str(SRC_ROOT))


def check_module_docstrings() -> list[str]:
    """Every public module under src/repro must open with a docstring."""
    problems = []
    for path in sorted(SRC_ROOT.glob("repro/**/*.py")):
        rel = path.relative_to(REPO_ROOT)
        if path.name != "__init__.py" and path.name.startswith("_"):
            continue  # private helper modules are exempt
        tree = ast.parse(path.read_text(encoding="utf-8"))
        if ast.get_docstring(tree) is None:
            problems.append(f"{rel}: public module lacks a module docstring")
    return problems


def check_readme_benchmarks() -> list[str]:
    """README's benchmark table and benchmarks/ must reference each other."""
    problems = []
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    referenced = set(re.findall(r"benchmarks/(bench_\w+\.py)", readme))
    existing = {p.name for p in (REPO_ROOT / "benchmarks").glob("bench_*.py")}
    for name in sorted(referenced - existing):
        problems.append(f"README.md references nonexistent benchmark file benchmarks/{name}")
    for name in sorted(existing - referenced):
        problems.append(f"benchmarks/{name} is not mentioned in README.md's benchmark map")
    return problems


def check_scenario_reference() -> list[str]:
    """docs/scenarios.md must document every ScenarioSpec field."""
    _ensure_importable()
    from repro.runner.scenario import ScenarioSpec

    problems = []
    doc = (REPO_ROOT / "docs" / "scenarios.md").read_text(encoding="utf-8")
    for field_name in ScenarioSpec.field_names():
        if not re.search(rf"`{re.escape(field_name)}`", doc):
            problems.append(f"docs/scenarios.md does not document ScenarioSpec field {field_name!r}")
    return problems


def check_example_scenarios() -> list[str]:
    """Every example scenario file must load and validate."""
    _ensure_importable()
    from repro.runner.scenario import ScenarioError, load_scenario_file

    problems = []
    scenario_dir = REPO_ROOT / "scenarios"
    files = sorted(
        list(scenario_dir.glob("*.json")) + list(scenario_dir.glob("*.toml"))
    )
    if not files:
        problems.append("scenarios/ contains no example scenario files")
    for path in files:
        try:
            specs = load_scenario_file(path)
        except ScenarioError as exc:
            problems.append(f"{path.relative_to(REPO_ROOT)}: {exc}")
            continue
        if not specs:
            problems.append(f"{path.relative_to(REPO_ROOT)}: expands to zero scenarios")
    return problems


def check_axis_coverage() -> list[str]:
    """Every round-mode, attack, and defense name must appear in the axis docs.

    The value lists come from the code, so a new axis value cannot land
    without a mention in both the scenario reference and the threat-model
    guide.
    """
    _ensure_importable()
    from repro.attacks.gradient_attacks import ATTACKS
    from repro.fl.robust import DEFENSES
    from repro.sim.rounds import ROUND_MODES

    axes = {"round_mode": ROUND_MODES, "attack": ATTACKS, "defense": DEFENSES}
    required_docs = ("docs/scenarios.md", "docs/threat_model.md")
    problems = []
    for rel in required_docs:
        path = REPO_ROOT / rel
        if not path.exists():
            problems.append(f"{rel}: axis-reference document is missing")
            continue
        text = path.read_text(encoding="utf-8")
        for axis, values in axes.items():
            for value in values:
                if not re.search(rf"\b{re.escape(value)}\b", text):
                    problems.append(f"{rel} does not document {axis} value {value!r}")
    return problems


def check_system_coverage() -> list[str]:
    """Every registered system name must appear in the scenario and API docs.

    The name list comes from the registry, so a new built-in system cannot
    land without a mention in both ``docs/scenarios.md`` and ``docs/api.md``
    (plugins loaded at run time are intentionally out of scope — only what
    ships registered is checked).
    """
    _ensure_importable()
    from repro.systems import system_names

    required_docs = ("docs/scenarios.md", "docs/api.md")
    problems = []
    for rel in required_docs:
        path = REPO_ROOT / rel
        if not path.exists():
            problems.append(f"{rel}: system-reference document is missing")
            continue
        text = path.read_text(encoding="utf-8")
        for name in system_names():
            if not re.search(rf"\b{re.escape(name)}\b", text):
                problems.append(f"{rel} does not document registered system {name!r}")
    return problems


def check_cli_flag_coverage() -> list[str]:
    """Every CLI flag (all subcommands) must appear in the docs/cli_help.txt snapshot."""
    _ensure_importable()
    import argparse

    from repro.cli import build_parser

    snapshot_path = REPO_ROOT / "docs" / "cli_help.txt"
    if not snapshot_path.exists():
        return ["docs/cli_help.txt: CLI help snapshot is missing"]
    snapshot = snapshot_path.read_text(encoding="utf-8")

    def walk(parser: argparse.ArgumentParser):
        for action in parser._actions:
            for option in action.option_strings:
                if option.startswith("--"):
                    yield option
            if isinstance(action, argparse._SubParsersAction):
                for sub in action.choices.values():
                    yield from walk(sub)

    problems = []
    for option in sorted(set(walk(build_parser()))):
        if option not in snapshot:
            problems.append(
                f"docs/cli_help.txt does not mention CLI flag {option}; regenerate with "
                "REGEN_SNAPSHOTS=1 PYTHONPATH=src python -m pytest tests/test_docs_tooling.py"
            )
    return problems


def check_benchmark_docs() -> list[str]:
    """docs/benchmarks.md must catalogue every bench file (and only real ones).

    The catalogue is the authoritative map from bench file to the paper
    figure/table it reproduces (plus runtime class and smoke-marker status),
    so a bench cannot land undocumented and a deleted bench cannot linger in
    the docs.
    """
    problems = []
    doc_path = REPO_ROOT / "docs" / "benchmarks.md"
    if not doc_path.exists():
        return ["docs/benchmarks.md: benchmark catalogue is missing"]
    doc = doc_path.read_text(encoding="utf-8")
    referenced = set(re.findall(r"\b(bench_\w+\.py)\b", doc))
    existing = {p.name for p in (REPO_ROOT / "benchmarks").glob("bench_*.py")}
    for name in sorted(existing - referenced):
        problems.append(f"docs/benchmarks.md does not document benchmarks/{name}")
    for name in sorted(referenced - existing):
        problems.append(f"docs/benchmarks.md references nonexistent benchmark file {name}")
    return problems


def check_api_reference() -> list[str]:
    """Every ``repro.api.__all__`` name must be in docs/api.md and documented.

    Two failures per name are possible: the public-API reference does not
    mention it, or the object itself lacks a docstring (the facade is the
    surface downstream users introspect, so ``help()`` must never come up
    empty).
    """
    _ensure_importable()
    from repro import api

    problems = []
    doc_path = REPO_ROOT / "docs" / "api.md"
    if not doc_path.exists():
        return ["docs/api.md: public-API reference is missing"]
    doc = doc_path.read_text(encoding="utf-8")
    for name in api.__all__:
        if not re.search(rf"\b{re.escape(name)}\b", doc):
            problems.append(f"docs/api.md does not document repro.api.{name}")
        obj = getattr(api, name)
        if not (getattr(obj, "__doc__", None) or "").strip():
            problems.append(f"repro.api.{name} has no docstring")
    return problems


def check_cli_subcommand_docs() -> list[str]:
    """Every CLI subcommand must appear in README.md or docs/api.md usage text.

    The flag-level snapshot (check 7) proves the help text is fresh; this
    check proves each *verb* is discoverable — somewhere a user actually
    reads, a ``repro <verb>`` (or ``python -m repro.cli <verb>``) invocation
    must exist.  Adding a subcommand without documenting how to call it
    fails here.
    """
    _ensure_importable()
    import argparse

    from repro.cli import build_parser

    sources = []
    for rel in ("README.md", "docs/api.md"):
        path = REPO_ROOT / rel
        if path.exists():
            sources.append(path.read_text(encoding="utf-8"))
    text = "\n".join(sources)

    commands: list[str] = []
    for action in build_parser()._actions:
        if isinstance(action, argparse._SubParsersAction):
            commands.extend(action.choices)

    problems = []
    for command in sorted(set(commands)):
        if not re.search(rf"\brepro(?:\.cli)?\s+{re.escape(command)}\b", text):
            problems.append(
                f"CLI subcommand {command!r} is not shown in README.md or docs/api.md "
                f"(add a 'repro {command}' usage example)"
            )
    return problems


def check_serve_endpoint_docs() -> list[str]:
    """Every declared HTTP endpoint must appear in docs/serve.md.

    The wire contract lives in ``repro.serve.protocol.ENDPOINTS``; the
    service reference must show each endpoint's method + path template and
    mention its name, so a new route cannot land undocumented.
    """
    _ensure_importable()
    from repro.serve.protocol import ENDPOINTS

    doc_path = REPO_ROOT / "docs" / "serve.md"
    if not doc_path.exists():
        return ["docs/serve.md: experiment-service reference is missing"]
    doc = doc_path.read_text(encoding="utf-8")
    problems = []
    for endpoint in ENDPOINTS.values():
        if endpoint.path not in doc:
            problems.append(
                f"docs/serve.md does not document endpoint {endpoint.method} "
                f"{endpoint.path} ({endpoint.name})"
            )
        elif not re.search(rf"\b{re.escape(endpoint.name)}\b", doc):
            problems.append(
                f"docs/serve.md documents {endpoint.path} but never names the "
                f"{endpoint.name!r} endpoint"
            )
    return problems


def check_net_axis_coverage() -> list[str]:
    """Every network-substrate axis value must appear in the axis docs.

    The topology list comes from ``repro.net.TOPOLOGIES`` and the
    ``partition`` / ``churn`` axis names are checked literally, so a new
    topology (or a renamed axis) cannot land without a mention in both the
    scenario reference and the threat-model guide.
    """
    _ensure_importable()
    from repro.net import TOPOLOGIES

    required_docs = ("docs/scenarios.md", "docs/threat_model.md")
    problems = []
    for rel in required_docs:
        path = REPO_ROOT / rel
        if not path.exists():
            problems.append(f"{rel}: net-axis reference document is missing")
            continue
        text = path.read_text(encoding="utf-8")
        for value in TOPOLOGIES:
            if not re.search(rf"\b{re.escape(value)}\b", text):
                problems.append(f"{rel} does not document topology value {value!r}")
        for axis in ("partition", "churn"):
            if not re.search(rf"`{axis}`", text):
                problems.append(f"{rel} does not document net axis {axis!r}")
    return problems


def main() -> int:
    problems = (
        check_module_docstrings()
        + check_readme_benchmarks()
        + check_scenario_reference()
        + check_example_scenarios()
        + check_axis_coverage()
        + check_system_coverage()
        + check_cli_flag_coverage()
        + check_benchmark_docs()
        + check_api_reference()
        + check_cli_subcommand_docs()
        + check_serve_endpoint_docs()
        + check_net_axis_coverage()
    )
    for problem in problems:
        print(f"docs-check: {problem}", file=sys.stderr)
    if problems:
        print(f"docs-check: {len(problems)} problem(s) found", file=sys.stderr)
        return 1
    print("docs-check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
